"""Snapshot export: JSON-lines out, parsed snapshots back in.

A snapshot file is one JSON object per line: a single ``meta`` record
(schema version, run context supplied by the caller) followed by one
record per instrument, exactly :meth:`Metric.to_dict` plus a ``kind``
discriminator. The format is append-friendly — a
:class:`SnapshotWriter` can lay down several snapshots in one file and
:func:`read_snapshots` returns them all — which is what periodic
in-run sampling produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .registry import MetricsRegistry, TelemetryError, quantile_from_buckets

SCHEMA_VERSION = 1


@dataclass
class Snapshot:
    """A parsed snapshot: run metadata plus metric records."""

    meta: dict = field(default_factory=dict)
    metrics: list[dict] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[dict]:
        return [m for m in self.metrics if m["kind"] == kind]

    def get(self, name: str, **labels) -> dict | None:
        """First metric record matching ``name`` and all given labels."""
        for metric in self.metrics:
            if metric["name"] != name:
                continue
            if all(metric["labels"].get(k) == str(v) for k, v in labels.items()):
                return metric
        return None

    def value(self, name: str, **labels) -> int | None:
        """Counter/gauge value shortcut (None when absent)."""
        metric = self.get(name, **labels)
        return None if metric is None else metric.get("value")

    def quantile(self, name: str, q: float, **labels) -> int | None:
        """Histogram quantile straight from a snapshot record."""
        metric = self.get(name, **labels)
        if metric is None or metric["kind"] != "histogram":
            return None
        return quantile_from_buckets(
            metric["buckets"],
            metric.get("overflow", 0),
            metric.get("count", 0),
            q,
            observed_max=metric.get("max"),
        )


def write_snapshot(
    registry: MetricsRegistry, path: str, meta: dict | None = None
) -> int:
    """Write one snapshot, replacing ``path``. Returns records written."""
    with open(path, "w", encoding="utf-8") as handle:
        return _emit(registry, handle, meta)


def _emit(registry: MetricsRegistry, handle, meta: dict | None) -> int:
    header = {"kind": "meta", "schema_version": SCHEMA_VERSION}
    header.update(meta or {})
    handle.write(json.dumps(header, sort_keys=True) + "\n")
    written = 1
    for record in registry.snapshot():
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    return written


class SnapshotWriter:
    """Appends successive snapshots of a registry to one JSONL file."""

    def __init__(self, path: str, registry: MetricsRegistry) -> None:
        self.path = path
        self.registry = registry
        self.snapshots_written = 0
        # Truncate up front so a run's file never mixes with a prior run's.
        open(path, "w", encoding="utf-8").close()

    def write(self, meta: dict | None = None) -> int:
        with open(self.path, "a", encoding="utf-8") as handle:
            written = _emit(self.registry, handle, meta)
        self.snapshots_written += 1
        return written


def read_snapshots(path: str) -> list[Snapshot]:
    """Parse every snapshot in a JSONL file (in file order)."""
    snapshots: list[Snapshot] = []
    current: Snapshot | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"{path}:{line_number}: bad JSON: {exc}") from None
            kind = record.get("kind")
            if kind == "meta":
                current = Snapshot(meta=record)
                snapshots.append(current)
            elif kind in ("counter", "gauge", "histogram"):
                if current is None:
                    current = Snapshot()
                    snapshots.append(current)
                current.metrics.append(record)
            else:
                raise TelemetryError(f"{path}:{line_number}: unknown kind {kind!r}")
    return snapshots


def read_snapshot(path: str) -> Snapshot:
    """Parse a file expected to hold exactly one snapshot."""
    snapshots = read_snapshots(path)
    if not snapshots:
        raise TelemetryError(f"{path}: no snapshot records")
    if len(snapshots) > 1:
        raise TelemetryError(f"{path}: {len(snapshots)} snapshots; use read_snapshots")
    return snapshots[0]
