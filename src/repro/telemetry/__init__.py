"""Telemetry: metrics registry, in-band network telemetry, and export.

The measurement substrate for the whole stack, in four parts:

- :mod:`.registry` — ``Counter`` / ``Gauge`` / ``Histogram`` instruments
  behind a :class:`MetricsRegistry`; integers only, fixed buckets, and
  shared no-op instruments when disabled (zero overhead off);
- :mod:`.inband` — INT: programmable elements push per-hop postcards
  (timestamp, queue depth, mode bits, seq) onto marked packets; an
  :class:`IntSink` at the receiving endpoint strips them into the
  registry;
- :mod:`.collect` — pull-side scrapers lifting the existing stats
  counters (ports, queues, links, endpoints, elements, buffers) into
  one registry for a whole-stack snapshot;
- :mod:`.export` — JSON-lines snapshot writer/reader, rendered by the
  ``repro telemetry`` CLI; :mod:`.benchfmt` — the shared
  ``BENCH_<name>.json`` benchmark-result schema.
"""

from .benchfmt import BenchResult, load_bench_result
from .collect import (
    scrape_balancer,
    scrape_buffer,
    scrape_element,
    scrape_flow_counters,
    scrape_flow_residency,
    scrape_link,
    scrape_port,
    scrape_queue,
    scrape_receiver,
    scrape_receiver_flows,
    scrape_sender,
    scrape_simulator,
    scrape_stack,
    scrape_topology,
)
from .export import (
    SCHEMA_VERSION,
    Snapshot,
    SnapshotWriter,
    read_snapshot,
    read_snapshots,
    write_snapshot,
)
from .inband import (
    DEFAULT_MAX_HOPS,
    INT_BASE_BYTES,
    IntDomain,
    IntHeader,
    IntPostcard,
    IntSink,
    POSTCARD_BYTES,
)
from .registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_PCT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetryError,
    quantile_from_buckets,
)

__all__ = [
    "BenchResult",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_MAX_HOPS",
    "DEFAULT_PCT_BUCKETS",
    "Gauge",
    "Histogram",
    "INT_BASE_BYTES",
    "IntDomain",
    "IntHeader",
    "IntPostcard",
    "IntSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "POSTCARD_BYTES",
    "SCHEMA_VERSION",
    "Snapshot",
    "SnapshotWriter",
    "TelemetryError",
    "load_bench_result",
    "quantile_from_buckets",
    "read_snapshot",
    "read_snapshots",
    "scrape_balancer",
    "scrape_buffer",
    "scrape_element",
    "scrape_flow_counters",
    "scrape_flow_residency",
    "scrape_link",
    "scrape_port",
    "scrape_queue",
    "scrape_receiver",
    "scrape_receiver_flows",
    "scrape_sender",
    "scrape_simulator",
    "scrape_stack",
    "scrape_topology",
    "write_snapshot",
]
