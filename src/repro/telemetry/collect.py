"""Scrape collectors: lift existing stats objects into the registry.

The simulator, ports, queues, endpoints, and dataplane elements all
keep cheap plain-int counters on their hot paths already. These
collectors read them into a :class:`~repro.telemetry.registry
.MetricsRegistry` so one snapshot covers the whole stack — the pull
half of the telemetry design (INT postcards are the push half).

Counters are written with ``set_total`` (absolute values), so scraping
the same component repeatedly is idempotent; histograms fed from sample
logs (delivery latencies) consume each sample once per scrape — call
those at end of run, which is what the harnesses do.

Everything is duck-typed on the stats attributes, so the collectors
depend on no simulation module and can scrape lookalike objects in
tests.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from .registry import DEFAULT_LATENCY_BUCKETS_NS, MetricsRegistry

#: bits-per-second in one percent-nanosecond unit (see link utilization).
_SECOND_NS = 1_000_000_000


def _scrape_dataclass(registry: MetricsRegistry, prefix: str, stats, **labels) -> None:
    """One counter per int field of a stats dataclass."""
    for field in dataclass_fields(stats):
        value = getattr(stats, field.name)
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        registry.counter(f"{prefix}_{field.name}", **labels).set_total(value)


def scrape_simulator(sim, registry: MetricsRegistry) -> None:
    """Engine health: event throughput and the virtual clock."""
    registry.counter("sim_events_processed").set_total(sim.events_processed)
    registry.gauge("sim_now_ns").set(sim.now)
    registry.gauge("sim_pending_events").set(sim.pending_events())


def scrape_queue(queue, registry: MetricsRegistry, **labels) -> None:
    """Queue depth/drops plus AQM/ECN counters when the discipline has
    them (``RedQueue`` CE marks and early drops)."""
    registry.gauge("queue_bytes", **labels).set(queue.bytes_queued)
    registry.gauge("queue_peak_bytes", **labels).set_max(queue.peak_bytes)
    registry.counter("queue_dropped_total", **labels).set_total(queue.dropped)
    ce_marked = getattr(queue, "ce_marked", None)
    if ce_marked is not None:
        registry.counter("queue_ce_marked_total", **labels).set_total(ce_marked)
    early_drops = getattr(queue, "early_drops", None)
    if early_drops is not None:
        registry.counter("queue_early_drops_total", **labels).set_total(
            early_drops
        )


def scrape_port(port, registry: MetricsRegistry, node: str | None = None) -> None:
    """Port tx/rx/drops plus egress-queue occupancy high-water mark."""
    labels = {"node": node or port.node.name, "port": port.name}
    _scrape_dataclass(registry, "port", port.stats, **labels)
    scrape_queue(port.queue, registry, **labels)


def scrape_link(link, registry: MetricsRegistry, now_ns: int | None = None) -> None:
    """Link delivery/loss counts and per-direction utilization."""
    labels = {"link": link.name}
    registry.counter("link_delivered_total", **labels).set_total(link.stats.delivered)
    registry.counter("link_lost_random_total", **labels).set_total(link.stats.lost_random)
    registry.counter("link_lost_corruption_total", **labels).set_total(
        link.stats.lost_corruption
    )
    registry.counter("link_lost_down_total", **labels).set_total(link.stats.lost_down)
    registry.counter("link_lost_model_total", **labels).set_total(link.stats.lost_model)
    registry.counter("link_rate_changes_total", **labels).set_total(
        link.stats.rate_changes
    )
    registry.counter("link_delay_changes_total", **labels).set_total(
        link.stats.delay_changes
    )
    registry.gauge("link_current_rate_bps", **labels).set(link.stats.current_rate_bps)
    if now_ns:
        for port in link.ends:
            # utilization% = bits sent / (rate × elapsed), integer math.
            pct = (port.stats.tx_bytes * 8 * 100 * _SECOND_NS) // (
                link.rate_bps * now_ns
            )
            registry.gauge(
                "link_utilization_pct", link=link.name, direction=port.node.name
            ).set(min(pct, 100))


def scrape_topology(topology, registry: MetricsRegistry, now_ns: int | None = None) -> None:
    """Every node's ports and every link of a built topology."""
    for node in topology.nodes.values():
        for port in node.ports.values():
            scrape_port(port, registry, node=node.name)
    for link in topology.links:
        scrape_link(link, registry, now_ns=now_ns)


def scrape_receiver(receiver, registry: MetricsRegistry, host: str | None = None) -> None:
    """Receiver-side transport counters plus the delivery latency histogram."""
    labels = {"host": host} if host else {}
    _scrape_dataclass(registry, "mmt_rx", receiver.stats, **labels)
    registry.gauge("mmt_rx_outstanding", **labels).set(receiver.outstanding())
    histogram = registry.histogram(
        "mmt_delivery_latency_ns", buckets=DEFAULT_LATENCY_BUCKETS_NS, **labels
    )
    histogram.observe_many(latency for _at, latency in receiver.delivery_log)


def scrape_sender(
    sender,
    registry: MetricsRegistry,
    host: str | None = None,
    flow: str | None = None,
) -> None:
    labels = {"host": host} if host else {}
    if flow:
        labels["flow"] = flow
    _scrape_dataclass(registry, "mmt_tx", sender.stats, **labels)


def scrape_stack(stack, registry: MetricsRegistry) -> None:
    """An MmtStack's senders, receivers, and demux/buffer counters."""
    host = stack.host.name
    registry.counter("mmt_rx_unknown_experiment", host=host).set_total(
        stack.rx_unknown_experiment
    )
    registry.counter("mmt_deadline_miss_reports", host=host).set_total(
        len(stack.deadline_misses)
    )
    for receiver in stack.receivers.values():
        scrape_receiver(receiver, registry, host=host)
    # A host with several senders (one per flow) gets per-flow series;
    # single-sender stacks keep the unlabelled legacy series, and two
    # same-host senders never collide on one monotonic counter.
    multi = len(stack.senders) > 1
    for sender in stack.senders:
        scrape_sender(
            sender, registry, host=host, flow=sender.flow if multi else None
        )
    if stack.buffer is not None:
        scrape_buffer(stack.buffer, registry, host=host)


def scrape_buffer(buffer, registry: MetricsRegistry, host: str | None = None) -> None:
    """Retransmission buffer occupancy and hit/miss counters."""
    labels = {"host": host} if host else {"host": buffer.address}
    _scrape_dataclass(registry, "retx_buffer", buffer.stats, **labels)
    registry.gauge("retx_buffer_bytes", **labels).set(buffer.bytes_used)


def scrape_receiver_flows(receiver, registry: MetricsRegistry, host: str | None = None) -> None:
    """Per-flow receiver counters (multi-flow runs).

    One labelled series per ``(experiment, flow)`` the receiver has
    state for; single-flow receivers expose only the aggregate series
    from :func:`scrape_receiver`, so legacy dashboards are unchanged.
    """
    for (experiment_id, flow_id), counters in receiver.flow_summary().items():
        labels = {"experiment": str(experiment_id), "flow": str(flow_id)}
        if host:
            labels["host"] = host
        for name, value in counters.items():
            if name == "outstanding":
                registry.gauge("mmt_rx_flow_outstanding", **labels).set(value)
            else:
                registry.counter(f"mmt_rx_flow_{name}", **labels).set_total(value)


def scrape_flow_counters(counters, registry: MetricsRegistry, element: str | None = None) -> None:
    """In-path per-flow ingress counters (``(exp, flow) → (pkts, bytes)``),
    e.g. :meth:`~repro.dataplane.tofino.TofinoSwitch.flow_counters`."""
    for (experiment_id, flow_id), (packets, nbytes) in counters.items():
        labels = {"experiment": str(experiment_id), "flow": str(flow_id)}
        if element:
            labels["element"] = element
        registry.counter("element_flow_packets_total", **labels).set_total(packets)
        registry.counter("element_flow_bytes_total", **labels).set_total(nbytes)


def scrape_flow_residency(residency, registry: MetricsRegistry, host: str | None = None) -> None:
    """Retransmission-buffer bytes held per ``(experiment, flow)``,
    e.g. :meth:`~repro.dataplane.alveo.AlveoNic.hbm_flow_occupancy`."""
    for (experiment_id, flow_id), nbytes in residency.items():
        labels = {"experiment": str(experiment_id), "flow": str(flow_id)}
        if host:
            labels["host"] = host
        registry.gauge("retx_buffer_flow_bytes", **labels).set(nbytes)


def scrape_balancer(balancer, registry: MetricsRegistry, element: str | None = None) -> None:
    """An EJ-FAT-style load balancer: per-backend state plus the
    table-health counters (epoch, redirects, retx rebinds).

    One ``fleet_node_*`` series per backend — fill level as reported by
    the sync loop, windows assigned, packets/bytes steered — so a
    scrape answers "is the farm balanced and who is absorbing repair
    traffic" without touching the balancer object.
    """
    base = {"element": element} if element else {}
    for address, state in balancer.backends.items():
        labels = dict(base, backend=address)
        registry.gauge("fleet_node_fill_pct", **labels).set(state.fill_pct)
        registry.gauge("fleet_node_draining", **labels).set(int(state.draining))
        registry.gauge("fleet_node_dead", **labels).set(int(state.dead))
        registry.counter("fleet_node_windows_assigned", **labels).set_total(
            state.windows_assigned
        )
        registry.counter("fleet_node_packets_steered", **labels).set_total(
            state.packets_steered
        )
        registry.counter("fleet_node_bytes_steered", **labels).set_total(
            state.bytes_steered
        )
    registry.counter("balancer_epoch", **base).set_total(balancer.epoch)
    registry.counter("balancer_table_updates", **base).set_total(balancer.table_updates)
    registry.counter("balancer_redirects", **base).set_total(balancer.redirects)
    registry.counter("balancer_retx_rebinds", **base).set_total(balancer.retx_rebinds)
    registry.counter("balancer_follows_dead", **base).set_total(balancer.follows_dead)
    registry.counter("balancer_unsteerable", **base).set_total(balancer.unsteerable)


def scrape_element(element, registry: MetricsRegistry) -> None:
    """A programmable element: stats, per-table hit counts, its buffer."""
    name = element.name
    _scrape_dataclass(registry, "element", element.stats, element=name)
    for table in element.pipeline.tables:
        labels = {"element": name, "table": table.name}
        registry.counter("table_lookups_total", **labels).set_total(table.lookups)
        registry.counter("table_default_hits_total", **labels).set_total(
            table.default_hits
        )
        registry.counter("table_entry_hits_total", **labels).set_total(
            sum(entry.hits for entry in table.entries)
        )
    if element.buffer is not None:
        scrape_buffer(element.buffer, registry, host=name)
