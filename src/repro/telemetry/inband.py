"""In-band network telemetry (INT): per-hop postcards on marked packets.

The same machinery the paper uses for header rewriting — conservative,
header-only processing on programmable elements — powers INT in
production P4 deployments: a *source* element marks a packet by
appending an :class:`IntHeader`, every enrolled *transit* element pushes
an :class:`IntPostcard` (hop id, timestamp, queue depth, mode bits,
sequence number) onto the stack, and the *sink* at the receiving
endpoint strips the stack and feeds a
:class:`~repro.telemetry.registry.MetricsRegistry`.

Everything in a postcard is an integer a Tofino could write from
intrinsic metadata; the codec is byte-exact so the wire overhead
(4 bytes base + 16 per hop) is charged against link serialization like
any other header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from ..netsim.headers import Header
from ..netsim.packet import Packet
from .registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_PCT_BUCKETS,
    MetricsRegistry,
    TelemetryError,
)

#: Wire size of one postcard (see :meth:`IntPostcard.encode`).
POSTCARD_BYTES = 16

#: Wire size of the INT base header (max hops, hop count, reserved).
INT_BASE_BYTES = 4

#: Default cap on the postcard stack (bounds per-packet overhead).
DEFAULT_MAX_HOPS = 8

_TS_MASK = (1 << 48) - 1


@dataclass
class IntPostcard:
    """One hop's telemetry record.

    ``timestamp_ns`` is a 48-bit wire field (enough for ~78 hours of
    nanoseconds — INT timestamps are deltas between nearby hops, so
    wrap is harmless); ``queue_depth_pct`` is the worst egress queue
    occupancy of the element, 0..100. ``flow_id`` occupies the trailing
    u16 (formerly reserved flags), so multi-flow postcards cost no
    extra wire bytes and flow 0 is bit-identical to the old encoding.
    """

    hop_id: int
    timestamp_ns: int
    queue_depth_pct: int = 0
    config_id: int = 0
    seq: int = 0
    flow_id: int = 0

    def encode(self) -> bytes:
        ts = self.timestamp_ns & _TS_MASK
        return struct.pack(
            ">HHIIBBH",
            self.hop_id & 0xFFFF,
            (ts >> 32) & 0xFFFF,
            ts & 0xFFFFFFFF,
            self.seq & 0xFFFFFFFF,
            self.queue_depth_pct & 0xFF,
            self.config_id & 0xFF,
            self.flow_id & 0xFFFF,
        )

    @classmethod
    def decode(cls, data: bytes) -> "IntPostcard":
        if len(data) != POSTCARD_BYTES:
            raise TelemetryError(f"postcard must be {POSTCARD_BYTES} bytes, got {len(data)}")
        hop_id, ts_hi, ts_lo, seq, queue, config_id, flow_id = struct.unpack(
            ">HHIIBBH", data
        )
        return cls(
            hop_id=hop_id,
            timestamp_ns=(ts_hi << 32) | ts_lo,
            queue_depth_pct=queue,
            config_id=config_id,
            seq=seq,
            flow_id=flow_id,
        )


@dataclass
class IntHeader(Header):
    """The INT metadata stack: a bounded list of per-hop postcards.

    Stacks innermost (after the MMT header), so L2/L3 forwarding never
    sees it; its bytes still count toward serialization time and MTU.
    """

    max_hops: int = DEFAULT_MAX_HOPS
    hops: list[IntPostcard] = field(default_factory=list)

    #: ``hops`` grows in place (see push), which changes the wire size;
    #: push() calls _touch() so memoized packet sizes recompute.
    _SIZE_FIELDS = frozenset({"hops", "max_hops"})

    @property
    def size_bytes(self) -> int:
        return INT_BASE_BYTES + POSTCARD_BYTES * len(self.hops)

    def copy(self) -> "IntHeader":
        # The default field-wise copy would share the postcard list;
        # duplicated packets must be able to diverge.
        return IntHeader(max_hops=self.max_hops, hops=[replace(p) for p in self.hops])

    def push(self, postcard: IntPostcard) -> bool:
        """Append a postcard; False when the stack is full (hop skipped)."""
        if len(self.hops) >= self.max_hops:
            return False
        self.hops.append(postcard)
        self._touch()  # in-place growth: invalidate memoized packet sizes
        return True

    def encode(self) -> bytes:
        if len(self.hops) > self.max_hops:
            raise TelemetryError(
                f"{len(self.hops)} postcards exceed max_hops={self.max_hops}"
            )
        out = bytearray(struct.pack(">BBH", self.max_hops, len(self.hops), 0))
        for postcard in self.hops:
            out += postcard.encode()
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "IntHeader":
        if len(data) < INT_BASE_BYTES:
            raise TelemetryError(f"truncated INT base header: {len(data)} bytes")
        max_hops, count, _reserved = struct.unpack(">BBH", data[:INT_BASE_BYTES])
        expected = INT_BASE_BYTES + count * POSTCARD_BYTES
        if len(data) != expected:
            raise TelemetryError(
                f"INT header declares {count} hops ({expected} bytes), got {len(data)}"
            )
        hops = []
        for i in range(count):
            offset = INT_BASE_BYTES + i * POSTCARD_BYTES
            hops.append(IntPostcard.decode(data[offset : offset + POSTCARD_BYTES]))
        return cls(max_hops=max_hops, hops=hops)


class IntDomain:
    """Allocates hop ids and enrolls dataplane elements into INT.

    One domain per telemetry deployment: it hands each enrolled element
    a stable hop id, remembers the id → name mapping for the sink's
    labels, and flips the element-side attributes that activate the INT
    feature (``int_hop_id``, ``int_source``, sampling)."""

    def __init__(self, max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.max_hops = max_hops
        self.hop_names: dict[int, str] = {}
        self._next_id = 1

    def enroll(self, element, source: bool = False, sample_every: int = 1) -> int:
        """Enroll a programmable element; returns its hop id.

        ``source=True`` makes the element mark unmarked MMT data packets
        (every ``sample_every``-th one) with a fresh INT header; every
        enrolled element appends its postcard to marked packets.
        """
        if sample_every < 1:
            raise TelemetryError(f"sample_every must be >= 1, got {sample_every}")
        if getattr(element, "int_hop_id", None) is not None:
            raise TelemetryError(f"{element.name} is already enrolled")
        hop_id = self._next_id
        self._next_id += 1
        self.hop_names[hop_id] = element.name
        element.int_hop_id = hop_id
        element.int_source = source
        element.int_sample_every = sample_every
        element.int_max_hops = self.max_hops
        return hop_id

    def make_sink(self, registry: MetricsRegistry) -> "IntSink":
        return IntSink(registry, hop_names=self.hop_names)


class IntSink:
    """Strips INT stacks at the receiving endpoint and feeds the registry.

    Attached to an endpoint stack (``MmtStack.int_sink``); for every
    arriving packet carrying an :class:`IntHeader` it records:

    - ``int_postcards_total{hop}`` — postcards seen per hop;
    - ``int_queue_depth_pct{hop}`` — per-hop queue occupancy histogram
      (its max is the queue high-water mark as INT observed it);
    - ``int_segment_latency_ns{segment}`` — per-segment latency between
      consecutive enrolled hops;
    - ``int_path_latency_ns`` — first-enrolled-hop to sink latency.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        hop_names: dict[int, str] | None = None,
        now: "object" = None,
    ) -> None:
        self.registry = registry
        self.hop_names = dict(hop_names or {})
        #: Optional clock (callable returning ns) for sink-side latency.
        self._now = now
        self.packets_stripped = registry.counter(
            "int_packets_stripped", help="packets whose INT stack this sink consumed"
        )
        self.postcards_total = registry.counter("int_postcards_total")
        self._hop_counters: dict[int, object] = {}
        self._flow_counters: dict[int, object] = {}
        self._hop_queue_hists: dict[int, object] = {}
        self._segment_hists: dict[tuple[int, int], object] = {}
        self._path_hist = registry.histogram(
            "int_path_latency_ns", buckets=DEFAULT_LATENCY_BUCKETS_NS
        )

    def hop_name(self, hop_id: int) -> str:
        return self.hop_names.get(hop_id, f"hop{hop_id}")

    def absorb(self, packet: Packet) -> IntHeader | None:
        """Remove and account the packet's INT stack, if it has one."""
        header = packet.find(IntHeader)
        if header is None:
            return None
        packet.headers.remove(header)
        self.packets_stripped.inc()
        self._record(header)
        return header

    def _record(self, header: IntHeader) -> None:
        previous: IntPostcard | None = None
        for postcard in header.hops:
            self.postcards_total.inc()
            self._hop_counter(postcard.hop_id).inc()
            if postcard.flow_id:
                self._flow_counter(postcard.flow_id).inc()
            self._hop_queue_hist(postcard.hop_id).observe(postcard.queue_depth_pct)
            if previous is not None:
                delta = postcard.timestamp_ns - previous.timestamp_ns
                if delta >= 0:
                    self._segment_hist(previous.hop_id, postcard.hop_id).observe(delta)
            previous = postcard
        if header.hops:
            first = header.hops[0]
            last = header.hops[-1]
            end_ns = self._now() if self._now is not None else last.timestamp_ns
            if end_ns >= first.timestamp_ns:
                self._path_hist.observe(end_ns - first.timestamp_ns)

    # Instruments are cached per hop/segment so steady-state absorption
    # never touches the registry's dict-of-metrics.

    def _hop_counter(self, hop_id: int):
        counter = self._hop_counters.get(hop_id)
        if counter is None:
            counter = self.registry.counter(
                "int_hop_postcards_total", hop=self.hop_name(hop_id)
            )
            self._hop_counters[hop_id] = counter
        return counter

    def _flow_counter(self, flow_id: int):
        counter = self._flow_counters.get(flow_id)
        if counter is None:
            counter = self.registry.counter(
                "int_flow_postcards_total", flow=str(flow_id)
            )
            self._flow_counters[flow_id] = counter
        return counter

    def _hop_queue_hist(self, hop_id: int):
        hist = self._hop_queue_hists.get(hop_id)
        if hist is None:
            hist = self.registry.histogram(
                "int_queue_depth_pct",
                buckets=DEFAULT_PCT_BUCKETS,
                hop=self.hop_name(hop_id),
            )
            self._hop_queue_hists[hop_id] = hist
        return hist

    def _segment_hist(self, from_id: int, to_id: int):
        hist = self._segment_hists.get((from_id, to_id))
        if hist is None:
            hist = self.registry.histogram(
                "int_segment_latency_ns",
                buckets=DEFAULT_LATENCY_BUCKETS_NS,
                segment=f"{self.hop_name(from_id)}->{self.hop_name(to_id)}",
            )
            self._segment_hists[(from_id, to_id)] = hist
        return hist
