"""Fault-oriented loss models, including protocol-aware ones.

The generic models (:class:`UniformLoss`, :class:`GilbertElliottLoss`)
live in :mod:`repro.netsim.loss` so the netsim layer stays free of any
protocol knowledge. This module re-exports them and adds models that
*do* look inside packets — e.g. dropping only MMT control traffic —
which is why they live up here in the faults layer.
"""

from __future__ import annotations

import random

from ..core.features import MsgType
from ..core.header import MmtHeader
from ..netsim.loss import GilbertElliottLoss, LossModel, UniformLoss
from ..netsim.packet import Packet

__all__ = [
    "CONTROL_MSG_TYPES",
    "ControlPacketLoss",
    "GilbertElliottLoss",
    "LossModel",
    "UniformLoss",
]

#: MMT message types that carry recovery/flow control rather than data.
CONTROL_MSG_TYPES = frozenset(
    {
        MsgType.NAK,
        MsgType.WINDOW,
        MsgType.BACKPRESSURE,
        MsgType.MODE_ANNOUNCE,
    }
)


class ControlPacketLoss(LossModel):
    """Drop only MMT control packets (NAKs, grants, announcements).

    Data sails through untouched; each matching control packet is lost
    with probability ``rate``. This stresses exactly the paths a
    recovery protocol tends to assume are reliable: NAK retry backoff,
    window-grant starvation, announcement loss.
    """

    def __init__(
        self,
        rate: float,
        msg_types: frozenset[MsgType] | set[MsgType] = CONTROL_MSG_TYPES,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.msg_types = frozenset(msg_types)
        #: Matching control packets dropped / seen.
        self.dropped = 0
        self.seen = 0

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        mmt = packet.find(MmtHeader)
        if mmt is None or mmt.msg_type not in self.msg_types:
            return False
        self.seen += 1
        if rng.random() < self.rate:
            self.dropped += 1
            return True
        return False
