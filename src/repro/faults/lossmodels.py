"""Fault-oriented loss models, including protocol-aware ones.

The generic models (:class:`UniformLoss`, :class:`GilbertElliottLoss`)
live in :mod:`repro.netsim.loss` so the netsim layer stays free of any
protocol knowledge. This module re-exports them and adds models that
*do* look inside packets — e.g. dropping only MMT control traffic —
which is why they live up here in the faults layer.
"""

from __future__ import annotations

import random

from ..core.features import MsgType
from ..core.header import MmtHeader
from ..netsim.loss import GilbertElliottLoss, LossModel, UniformLoss
from ..netsim.packet import Packet

__all__ = [
    "CONTROL_MSG_TYPES",
    "ControlPacketLoss",
    "FlowFilteredLoss",
    "GilbertElliottLoss",
    "LossModel",
    "UniformLoss",
]

#: MMT message types that carry recovery/flow control rather than data.
CONTROL_MSG_TYPES = frozenset(
    {
        MsgType.NAK,
        MsgType.WINDOW,
        MsgType.BACKPRESSURE,
        MsgType.MODE_ANNOUNCE,
    }
)


class ControlPacketLoss(LossModel):
    """Drop only MMT control packets (NAKs, grants, announcements).

    Data sails through untouched; each matching control packet is lost
    with probability ``rate``. This stresses exactly the paths a
    recovery protocol tends to assume are reliable: NAK retry backoff,
    window-grant starvation, announcement loss.
    """

    def __init__(
        self,
        rate: float,
        msg_types: frozenset[MsgType] | set[MsgType] = CONTROL_MSG_TYPES,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.msg_types = frozenset(msg_types)
        #: Matching control packets dropped / seen.
        self.dropped = 0
        self.seen = 0

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        mmt = packet.find(MmtHeader)
        if mmt is None or mmt.msg_type not in self.msg_types:
            return False
        self.seen += 1
        if rng.random() < self.rate:
            self.dropped += 1
            return True
        return False


class FlowFilteredLoss(LossModel):
    """Drop one flow's data packets; everything else sails through.

    Matches MMT packets whose flow id (untagged → flow 0) equals
    ``flow_id`` and whose message type is DATA or RETX_DATA; each match
    is lost with probability ``rate``. Non-matching packets — other
    flows, control traffic, non-MMT — return False *without consuming a
    random draw*, so attaching this model leaves every co-resident
    flow's packet fate bit-identical to an undisturbed run. That
    non-perturbation is exactly what the cross-flow isolation tests
    pin down.
    """

    def __init__(
        self,
        rate: float,
        flow_id: int,
        experiment_id: int | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.flow_id = flow_id
        self.experiment_id = experiment_id
        #: Matching data packets dropped / seen.
        self.dropped = 0
        self.seen = 0

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        mmt = packet.find(MmtHeader)
        if mmt is None or mmt.msg_type not in (MsgType.DATA, MsgType.RETX_DATA):
            return False
        if (mmt.flow_id or 0) != self.flow_id:
            return False
        if (
            self.experiment_id is not None
            and mmt.experiment_id != self.experiment_id
        ):
            return False
        self.seen += 1
        if rng.random() < self.rate:
            self.dropped += 1
            return True
        return False
