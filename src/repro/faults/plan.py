"""Deterministic fault injection: scripted failures on a live topology.

A :class:`FaultPlan` is an ordered script of fault actions at absolute
simulation times — link outages and flaps, loss-model swaps, element
crash/restart, retransmission-buffer failures. A :class:`FaultInjector`
arms the plan on a :class:`~repro.netsim.engine.Simulator`, firing each
action at its time and keeping a replayable record of what fired when.

Everything here is pure scheduling: the *effects* live on the objects
being failed (``Link.up``, ``ProgrammableElement.crash()``,
``RetransmitBuffer.fail()``, ``BufferDirectory.mark_down()``), so the
same plan works on any topology built from those parts. Randomized
fault processes (burst loss regimes, flap jitter) draw from the
simulator's named RNG streams, which makes every chaos run replayable
from its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # imports only for annotations: keep faults light
    from ..core.endpoint import MmtSender
    from ..core.retransmit import BufferDirectory, RetransmitBuffer
    from ..dataplane.element import ProgrammableElement
    from ..dataplane.programs import ModeTransitionProgram, TransitionRule
    from ..netsim.engine import Simulator
    from ..netsim.link import Link, Port
    from ..netsim.loss import GilbertElliottLoss, LossModel
    from .dynamics import LinkDynamics


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: what to do, to what, and when."""

    at_ns: int
    kind: str
    target: str
    apply: Callable[[], None]


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault, as the injector logged it."""

    at_ns: int
    kind: str
    target: str


class FaultPlan:
    """A script of fault actions at absolute simulation times.

    Builder methods append actions and return ``self`` so plans chain::

        plan = (
            FaultPlan()
            .link_flap(wan, first_down_ns=300_000, down_ns=200_000,
                       period_ns=500_000, count=2)
            .buffer_fail(u280.buffer, at_ns=500_000, directory=directory)
        )
        FaultInjector(sim, plan).arm()

    Times are absolute (same clock as ``sim.now``); arming a plan whose
    actions are already in the past raises, so a plan is always either
    fully scheduled or not at all.
    """

    def __init__(self) -> None:
        self.actions: list[FaultAction] = []

    def _add(self, at_ns: int, kind: str, target: str, apply: Callable[[], None]) -> "FaultPlan":
        if at_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {at_ns}")
        self.actions.append(FaultAction(int(at_ns), kind, target, apply))
        return self

    # -- generic hook ---------------------------------------------------------

    def at(self, at_ns: int, callback: Callable[[], None], kind: str = "custom",
           target: str = "") -> "FaultPlan":
        """Schedule an arbitrary zero-argument fault callback."""
        return self._add(at_ns, kind, target, callback)

    # -- links ----------------------------------------------------------------

    def link_down(self, link: "Link", at_ns: int) -> "FaultPlan":
        """Take a link down (both directions) at ``at_ns``."""

        def apply() -> None:
            link.up = False

        return self._add(at_ns, "link_down", link.name, apply)

    def link_up(self, link: "Link", at_ns: int) -> "FaultPlan":
        """Bring a link back up at ``at_ns``."""

        def apply() -> None:
            link.up = True

        return self._add(at_ns, "link_up", link.name, apply)

    def link_flap(
        self,
        link: "Link",
        first_down_ns: int,
        down_ns: int,
        period_ns: int,
        count: int,
    ) -> "FaultPlan":
        """``count`` down/up cycles: down at ``first_down_ns + i*period_ns``
        for ``down_ns`` each. ``period_ns`` must exceed ``down_ns`` so the
        link is actually up between flaps."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if down_ns <= 0 or period_ns <= down_ns:
            raise ValueError("need 0 < down_ns < period_ns")
        for i in range(count):
            start = first_down_ns + i * period_ns
            self.link_down(link, start)
            self.link_up(link, start + down_ns)
        return self

    def set_loss_model(self, link: "Link", model: "LossModel | None", at_ns: int) -> "FaultPlan":
        """Install (or, with ``None``, remove) a loss model on a link."""

        def apply() -> None:
            link.loss_model = model

        kind = "clear_loss_model" if model is None else "set_loss_model"
        return self._add(at_ns, kind, link.name, apply)

    def clear_loss_model(self, link: "Link", at_ns: int) -> "FaultPlan":
        return self.set_loss_model(link, None, at_ns)

    # -- time-varying dynamics -------------------------------------------------

    def link_dynamics(self, dynamics: "LinkDynamics") -> "FaultPlan":
        """Arm a :class:`~repro.faults.dynamics.LinkDynamics` driver.

        The plan carries one action at the driver's start; the driver
        then self-schedules (one pending event at a time) until its
        bounded ``end_ns``, applying the trajectories through
        ``Link.reconfigure``. A second terminal action marks the
        driver's horizon so the plan's ``start_ns``/``end_ns`` window —
        which chaos scenarios report against — brackets the whole drift.
        """
        self._add(
            dynamics.start_ns, "link_dynamics", dynamics.link.name, dynamics.arm
        )
        if dynamics.end_ns > dynamics.start_ns:
            self._add(
                dynamics.end_ns,
                "link_dynamics_end",
                dynamics.link.name,
                lambda: None,
            )
        return self

    def ge_drift(
        self,
        model: "GilbertElliottLoss",
        schedule: "Iterable[tuple[int, dict[str, float]]]",
        target: str = "",
    ) -> "FaultPlan":
        """Drift an installed Gilbert–Elliott model's parameters.

        ``schedule`` is ``(at_ns, params)`` waypoints where each
        ``params`` dict holds ``set_params`` keyword arguments.
        Parameters are validated eagerly — a bad probability fails at
        plan construction, not mid-soak. The regime state and RNG
        stream are untouched, so drift schedules replay to identical
        loss draws for identical seeds.
        """
        valid = {"p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"}
        for at_ns, params in schedule:
            unknown = set(params) - valid
            if unknown:
                raise ValueError(f"unknown GE parameters: {sorted(unknown)}")
            for name, value in params.items():
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"{name} must be in [0, 1], got {value}")

            def apply(params: dict = dict(params)) -> None:
                model.set_params(**params)

            self._add(at_ns, "ge_drift", target or "gilbert-elliott", apply)
        return self

    def queue_resize(self, port: "Port", capacity_bytes: int, at_ns: int) -> "FaultPlan":
        """Re-carve a port's egress queue capacity at ``at_ns``."""
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")

        def apply() -> None:
            port.queue.resize(capacity_bytes)

        return self._add(at_ns, "queue_resize", repr(port), apply)

    # -- mid-flow shape-shifting ----------------------------------------------

    def mode_rewrite(
        self,
        program: "ModeTransitionProgram",
        rules: "list[TransitionRule]",
        at_ns: int,
    ) -> "FaultPlan":
        """Rewrite an element's mode-transition map mid-flow.

        The control-plane path-migration event: the installed table's
        entries are replaced with ``rules`` while the sequence register
        (and therefore every in-flight flow's numbering) carries over.
        """

        def apply() -> None:
            program.replace_rules(rules)

        return self._add(at_ns, "mode_rewrite", "mode_transition", apply)

    def sender_set_mode(
        self, sender: "MmtSender", mode: str, at_ns: int
    ) -> "FaultPlan":
        """Shape-shift a sender's primary mode mid-flow at ``at_ns``."""

        def apply() -> None:
            sender.set_mode(mode)

        return self._add(at_ns, "sender_set_mode", sender.flow, apply)

    # -- dataplane elements ---------------------------------------------------

    def element_crash(self, element: "ProgrammableElement", at_ns: int) -> "FaultPlan":
        """Crash a Tofino/Alveo element: all arriving traffic dropped."""
        return self._add(at_ns, "element_crash", element.name, element.crash)

    def element_restart(self, element: "ProgrammableElement", at_ns: int) -> "FaultPlan":
        """Restart a crashed element (registers and buffer contents wiped)."""
        return self._add(at_ns, "element_restart", element.name, element.restart)

    # -- retransmission buffers -----------------------------------------------

    def buffer_fail(
        self,
        buffer: "RetransmitBuffer",
        at_ns: int,
        directory: "BufferDirectory | None" = None,
    ) -> "FaultPlan":
        """Kill a retransmission buffer (contents lost, stores refused).

        When a :class:`BufferDirectory` is given the address is also
        marked down there, so directory-driven elements start re-stamping
        flows to the next-nearest live buffer at the same instant.
        """

        def apply() -> None:
            buffer.fail()
            if directory is not None:
                directory.mark_down(buffer.address)

        return self._add(at_ns, "buffer_fail", buffer.address, apply)

    def buffer_restore(
        self,
        buffer: "RetransmitBuffer",
        at_ns: int,
        directory: "BufferDirectory | None" = None,
    ) -> "FaultPlan":
        """Bring a failed buffer back (empty) and mark it live again."""

        def apply() -> None:
            buffer.restore()
            if directory is not None:
                directory.mark_up(buffer.address)

        return self._add(at_ns, "buffer_restore", buffer.address, apply)

    # -- inspection -----------------------------------------------------------

    @property
    def start_ns(self) -> int:
        """Time of the earliest action (0 for an empty plan)."""
        return min((a.at_ns for a in self.actions), default=0)

    @property
    def end_ns(self) -> int:
        """Time of the latest action (0 for an empty plan)."""
        return max((a.at_ns for a in self.actions), default=0)

    def __len__(self) -> int:
        return len(self.actions)


class FaultInjector:
    """Arms a :class:`FaultPlan` on a simulator and logs what fired."""

    def __init__(self, sim: "Simulator", plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        #: Chronological record of fired actions (replay audit trail).
        self.fired: list[FaultRecord] = []
        #: Causal tracer (repro.trace.Tracer) or None; records each
        #: fired action so packet timelines interleave with the faults
        #: that explain them.
        self.tracer = None
        self._armed = False

    def arm(self) -> int:
        """Schedule every action; returns how many were armed.

        Raises if any action is already in the past or the injector was
        armed before — a plan is scheduled exactly once, completely.
        """
        if self._armed:
            raise RuntimeError("fault plan already armed")
        now = self.sim.now
        for action in self.plan.actions:
            if action.at_ns < now:
                raise ValueError(
                    f"fault {action.kind!r} at {action.at_ns} is in the past (now={now})"
                )
        for action in self.plan.actions:
            self.sim.schedule(action.at_ns - now, self._fire, action)
        self._armed = True
        return len(self.plan.actions)

    def _fire(self, action: FaultAction) -> None:
        action.apply()
        self.fired.append(FaultRecord(self.sim.now, action.kind, action.target))
        if self.tracer is not None:
            self.tracer.emit(
                f"fault.{action.kind}", "fault-injector", target=action.target
            )
