"""Deterministic fault injection and resilience (the chaos layer).

Three pieces, stacked:

- :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultInjector`:
  scripted, seeded, replayable faults on any topology;
- :mod:`repro.faults.dynamics` — time-varying link models:
  :class:`Trajectory` curves (step/linear/diurnal) applied to live
  links by a self-scheduling :class:`LinkDynamics` driver;
- :mod:`repro.faults.lossmodels` — protocol-aware loss models
  (:class:`ControlPacketLoss`, :class:`FlowFilteredLoss`) plus
  re-exports of the generic netsim ones
  (:class:`GilbertElliottLoss`, :class:`UniformLoss`);
- :mod:`repro.faults.chaos` — named scenarios over the Fig. 4 pilot
  with recovery metrics, written to ``BENCH_chaos.json``.

The *mechanisms* these exercise (buffer liveness and failover in
:class:`~repro.core.retransmit.BufferDirectory`, sender mode
degradation, element crash/restart) live with the components they
protect; this package only injects the failures and measures the
response.
"""

from .chaos import (
    SCENARIOS,
    ChaosConfig,
    ChaosReport,
    ChaosRun,
    run_chaos,
    run_fleet_chaos,
    run_mode_rewrite_chaos,
    run_scenarios,
    write_bench,
)
from .dynamics import LinkDynamics, Trajectory
from .lossmodels import (
    CONTROL_MSG_TYPES,
    ControlPacketLoss,
    FlowFilteredLoss,
    GilbertElliottLoss,
    LossModel,
    UniformLoss,
)
from .plan import FaultAction, FaultInjector, FaultPlan, FaultRecord

__all__ = [
    "CONTROL_MSG_TYPES",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRun",
    "ControlPacketLoss",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FlowFilteredLoss",
    "GilbertElliottLoss",
    "LinkDynamics",
    "LossModel",
    "SCENARIOS",
    "Trajectory",
    "UniformLoss",
    "run_chaos",
    "run_fleet_chaos",
    "run_mode_rewrite_chaos",
    "run_scenarios",
    "write_bench",
]
