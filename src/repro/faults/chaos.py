"""Chaos harness: the Fig. 4 pilot under named fault scenarios.

Each scenario builds the pilot testbed, arms a :class:`FaultPlan`
against it, runs a message stream through the fault window, and
distils recovery metrics: time-to-recover, deliveries before/during/
after the window, unrecovered losses, degradations, failovers. All
randomness comes from the simulator seed, so the same seed reproduces
byte-identical metrics — chaos runs are regression tests, not dice.

Scenarios
---------

``link-flap``
    The WAN link goes down/up twice mid-stream. Packets (and NAKs) in
    flight during an outage are dropped at the link; recovery rides the
    normal NAK path once the link returns.
``burst-loss``
    A Gilbert–Elliott burst-loss model is installed on the WAN link for
    the middle of the stream, then removed — correlated loss bursts
    instead of independent drops.
``element-restart``
    The Tofino2 crashes mid-stream and restarts a little later with all
    stateful registers wiped; traffic arriving meanwhile is dropped.
``buffer-failover``
    The directory-wired pilot (``use_directory``): the U280's HBM
    buffer is killed mid-stream and marked down in the directory. With
    the DTN 1 failover buffer registered (``failover=True``) the Tofino
    re-stamps flows to it and recovery completes with zero unrecovered;
    without it the DTN 1 sender degrades to identification-only
    (announced, bounded NAKs, no storm).
``fleet-node-crash``
    The receiver-farm build (:mod:`repro.fleet`): one of N receiver
    DTNs crashes mid-stream. The fleet controller marks it down at the
    next sync tick, the balancer redirects its bound windows to
    survivors, and calendar-directed reconciliation repairs everything
    the dead node absorbed — zero unrecovered, with the crash-to-repair
    gap reported as time-to-recover.
``link-drift``
    Time-varying WAN: a :class:`~repro.faults.dynamics.LinkDynamics`
    driver ramps the propagation delay to 2× (piecewise-linear) and
    steps the rate down and back, while a Gilbert–Elliott model is
    installed and its parameters *drift* on a schedule. Exercises the
    delay-adaptive retransmit timeout: the receiver re-derives its RTO
    from the delay the path has now, not the one it started with.
``mode-rewrite-churn``
    Mid-flow shape-shifting under churn: a multi-flow directory build
    where the U55C's mode-transition map is rewritten mid-stream
    (deliver-check → age-recover and back) while buffer liveness flaps
    degrade and re-upgrade the senders. Every flow's payload digests
    are checked end to end — the rewrite must deliver all in-flight
    flows with zero content corruption.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path

from ..core.features import MsgType
from ..dataplane.pilot import PilotConfig, PilotTestbed
from ..dataplane.programs import TransitionRule
from ..netsim.engine import Simulator
from ..netsim.units import MICROSECOND, MILLISECOND
from ..telemetry.benchfmt import BenchResult
from ..telemetry.registry import MetricsRegistry
from .dynamics import LinkDynamics, Trajectory
from .lossmodels import GilbertElliottLoss
from .plan import FaultInjector, FaultPlan

#: The named scenarios, in the order ``--scenario all`` runs them.
SCENARIOS = (
    "link-flap",
    "burst-loss",
    "element-restart",
    "buffer-failover",
    "fleet-node-crash",
    "link-drift",
    "mode-rewrite-churn",
)


@dataclass
class ChaosConfig:
    """Parameters for one chaos run."""

    scenario: str = "link-flap"
    messages: int = 500
    payload_size: int = 8000
    interval_ns: int = 2 * MICROSECOND
    seed: int = 42
    #: ``buffer-failover`` only: register the DTN 1 failover buffer.
    #: ``False`` is the degradation variant — no live buffer remains
    #: after the kill, so the sender must degrade gracefully.
    failover: bool = True
    wan_delay_ns: int = 1 * MILLISECOND
    #: Background WAN corruption loss for ``buffer-failover`` (without
    #: some loss there is nothing for a retransmission buffer to do).
    wan_loss_rate: float = 0.02
    #: ``fleet-node-crash`` only: farm size and concurrency.
    fleet_nodes: int = 8
    fleet_flows: int = 16
    #: ``mode-rewrite-churn`` only: concurrent flows whose in-flight
    #: state must survive the mid-flow mode-map rewrite.
    rewrite_flows: int = 3
    #: On-clock sampling period for the observability sampler (0 = no
    #: sampler at all — the byte-identical legacy build). Enabling it
    #: also enables a bounded flight-recorder tracer so SLO breaches
    #: have a timeline to pin.
    sample_every_ns: int = 0
    #: Declarative SLO rules (``repro.obs.SloRule.parse`` syntax),
    #: evaluated on samples at engine time; requires ``sample_every_ns``.
    slo: tuple[str, ...] = ()

    @property
    def stream_ns(self) -> int:
        """Duration of the send stream (fault times scale with this)."""
        return self.messages * self.interval_ns


@dataclass
class ChaosReport:
    """Recovery metrics for one scenario run (all plain ints: these are
    the values committed to ``BENCH_chaos.json`` and diffed across
    commits, so nothing wall-clock-dependent belongs here)."""

    messages_sent: int
    delivered: int
    delivered_before: int
    delivered_during: int
    delivered_after: int
    duplicates: int
    unrecovered: int
    naks_sent: int
    naks_served: int
    failover_served: int
    retransmissions: int
    faults_injected: int
    faults_fired: int
    fault_start_ns: int
    fault_end_ns: int
    time_to_recover_ns: int
    lost_down: int
    lost_model: int
    mode_degradations: int
    mode_upgrades: int
    degraded_final: int
    element_degradations: int
    buffer_failovers: int
    directory_marks_down: int
    link_rate_changes: int
    link_delay_changes: int
    mode_rewrites: int
    content_mismatches: int

    @property
    def complete(self) -> bool:
        return self.delivered >= self.messages_sent and self.unrecovered == 0

    def metrics(self) -> dict[str, int]:
        """Flat metric dict, ready for :meth:`BenchResult.record`."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


@dataclass
class ChaosRun:
    """A finished chaos run: the metrics plus the live objects behind
    them, for tests and telemetry export."""

    scenario: str
    config: ChaosConfig
    report: ChaosReport
    #: The testbed behind the run: a :class:`PilotTestbed`, or a
    #: :class:`~repro.fleet.farm.ReceiverFarm` for ``fleet-node-crash``.
    #: ``None`` for runs that crossed a process boundary (sharded
    #: campaigns detach live simulation state before pickling).
    pilot: object
    injector: FaultInjector | None
    metrics: MetricsRegistry | None
    #: :class:`repro.obs.HealthReport` when the run carried SLO rules
    #: (picklable, so it survives sharded campaigns); ``None`` otherwise.
    health: object | None = None


def _pilot_config(cfg: ChaosConfig) -> PilotConfig:
    # With sampling off (the default, and every committed benchmark)
    # these kwargs are all defaults, so the build — and BENCH_chaos.json
    # — is byte-identical to the pre-observability code.
    obs = dict(
        sample_every_ns=cfg.sample_every_ns or None,
        trace=bool(cfg.sample_every_ns),
        trace_capacity=4096 if cfg.sample_every_ns else None,
    )
    if cfg.scenario == "buffer-failover":
        return PilotConfig(
            wan_delay_ns=cfg.wan_delay_ns,
            wan_loss_rate=cfg.wan_loss_rate,
            telemetry=True,
            use_directory=True,
            reliable_from_dtn1=True,
            failover_buffer=cfg.failover,
            **obs,
        )
    return PilotConfig(wan_delay_ns=cfg.wan_delay_ns, telemetry=True, **obs)


def _build_plan(cfg: ChaosConfig, pilot: PilotTestbed) -> FaultPlan:
    stream = cfg.stream_ns
    plan = FaultPlan()
    if cfg.scenario == "link-flap":
        plan.link_flap(
            pilot.wan_link,
            first_down_ns=stream // 4,
            down_ns=stream // 5,
            period_ns=stream // 2,
            count=2,
        )
    elif cfg.scenario == "burst-loss":
        # Hot enough that bursts reliably hit the window even for short
        # CI streams (~75 packets): E[bursts] = packets * p_g2b.
        model = GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.2, loss_good=0.0, loss_bad=0.7
        )
        plan.set_loss_model(pilot.wan_link, model, at_ns=stream // 4)
        plan.clear_loss_model(pilot.wan_link, at_ns=3 * stream // 4)
    elif cfg.scenario == "element-restart":
        plan.element_crash(pilot.tofino, at_ns=stream // 3)
        plan.element_restart(pilot.tofino, at_ns=2 * stream // 3)
    elif cfg.scenario == "buffer-failover":
        plan.buffer_fail(pilot.buffer, at_ns=stream // 2, directory=pilot.directory)
    elif cfg.scenario == "link-drift":
        # Time-varying WAN: delay ramps linearly to 2x across the middle
        # of the stream (and stays there), while the rate steps down to
        # 40% and back. Layered on top, a Gilbert-Elliott model whose
        # parameters drift worse and then recover — so the receiver's
        # retransmit timeout is exercised against the delay the path has
        # *now*, not the one the stream started with.
        wan = pilot.wan_link
        base_delay = cfg.wan_delay_ns
        delay = Trajectory(
            [
                (0, base_delay),
                (stream // 4, base_delay),
                (3 * stream // 4, 2 * base_delay),
            ],
            interpolate="linear",
        )
        rate = Trajectory(
            [
                (0, wan.rate_bps),
                (stream // 3, wan.rate_bps * 2 // 5),
                (2 * stream // 3, wan.rate_bps),
            ],
            interpolate="step",
        )
        plan.link_dynamics(
            LinkDynamics(
                wan,
                rate_bps=rate,
                delay_ns=delay,
                start_ns=0,
                end_ns=stream,
                sample_every_ns=max(stream // 32, 1),
            )
        )
        model = GilbertElliottLoss(
            p_good_to_bad=0.03, p_bad_to_good=0.25, loss_good=0.0, loss_bad=0.5
        )
        plan.set_loss_model(wan, model, at_ns=stream // 4)
        plan.ge_drift(
            model,
            [
                (stream // 2, {"p_good_to_bad": 0.05, "loss_bad": 0.7}),
                (5 * stream // 8, {"p_good_to_bad": 0.02, "loss_bad": 0.3}),
            ],
            target=wan.name,
        )
        plan.clear_loss_model(wan, at_ns=3 * stream // 4)
    else:
        raise ValueError(f"unknown scenario {cfg.scenario!r} (one of {SCENARIOS})")
    return plan


def run_fleet_chaos(cfg: ChaosConfig) -> ChaosRun:
    """The receiver-farm crash scenario: build, crash, repair, measure."""
    # Imported here, not at module top: fleet builds on faults (the
    # controller consumes BufferDirectory-style marks), so the reverse
    # import must stay lazy.
    from ..fleet import FarmConfig, ReceiverFarm

    farm = ReceiverFarm(
        sim=Simulator(seed=cfg.seed),
        config=FarmConfig(
            nodes=cfg.fleet_nodes,
            flows=cfg.fleet_flows,
            wan_delay_ns=cfg.wan_delay_ns,
            telemetry=True,
        ),
    )
    victim = farm.nodes[cfg.fleet_nodes // 2]
    # The message budget is split across the flows (all sending in
    # parallel), so the stream actually spans one flow's share — the
    # crash must land inside *that* window, half an interval off the
    # midpoint so it never coincides with a sync tick (the detection
    # gap must be nonzero for redirect-on-crash to be exercised).
    base_count, extra = divmod(cfg.messages, cfg.fleet_flows)
    span = (base_count + (1 if extra else 0)) * cfg.interval_ns
    crash_at = span // 2 + cfg.interval_ns // 2
    plan = FaultPlan()
    plan.at(
        crash_at,
        lambda: farm.crash_node(victim.index),
        kind="node_crash",
        target=victim.host.name,
    )
    injector = FaultInjector(farm.sim, plan)

    for fid in range(cfg.fleet_flows):
        count = base_count + (1 if fid < extra else 0)
        farm.send_stream(
            count, payload_size=cfg.payload_size, interval_ns=cfg.interval_ns, flow=fid
        )
    injector.arm()
    base = farm.run()

    fault_start, fault_end = plan.start_ns, plan.end_ns
    deliveries = [(t, m) for t, m, *_ in farm.deliveries]
    before = sum(1 for t, _m in deliveries if t < fault_start)
    during = sum(1 for t, _m in deliveries if fault_start <= t <= fault_end)
    after = sum(1 for t, _m in deliveries if t > fault_end)
    retx_times = [t for t, m in deliveries if m == MsgType.RETX_DATA]
    recovered_at = max(retx_times, default=fault_end)

    report = ChaosReport(
        messages_sent=base.messages_sent,
        delivered=base.delivered,
        delivered_before=before,
        delivered_during=during,
        delivered_after=after,
        duplicates=sum(node.receiver.stats.duplicates for node in farm.nodes),
        unrecovered=base.unrecovered,
        naks_sent=base.naks_sent,
        naks_served=base.naks_served,
        failover_served=0,
        retransmissions=base.retransmissions,
        faults_injected=len(plan),
        faults_fired=len(injector.fired),
        fault_start_ns=fault_start,
        fault_end_ns=fault_end,
        time_to_recover_ns=max(0, recovered_at - fault_end),
        lost_down=victim.link.stats.lost_down,
        lost_model=0,
        mode_degradations=0,
        mode_upgrades=0,
        degraded_final=0,
        element_degradations=0,
        buffer_failovers=0,
        # The controller's liveness marks play the directory's role.
        directory_marks_down=farm.controller.stats.marks_down,
        link_rate_changes=0,
        link_delay_changes=0,
        mode_rewrites=0,
        content_mismatches=0,
    )
    metrics = farm.collect_telemetry()
    return ChaosRun(
        scenario=cfg.scenario,
        config=cfg,
        report=report,
        pilot=farm,
        injector=injector,
        metrics=metrics,
    )


def run_chaos(cfg: ChaosConfig) -> ChaosRun:
    """Build, fault, run, and measure one scenario."""
    if cfg.scenario == "fleet-node-crash":
        return run_fleet_chaos(cfg)
    if cfg.scenario == "mode-rewrite-churn":
        return run_mode_rewrite_chaos(cfg)
    pilot = PilotTestbed(sim=Simulator(seed=cfg.seed), config=_pilot_config(cfg))
    plan = _build_plan(cfg, pilot)
    injector = FaultInjector(pilot.sim, plan)
    watchdog = None
    if cfg.slo:
        if pilot.sampler is None:
            raise ValueError("slo rules need sample_every_ns > 0")
        from ..obs import Watchdog

        watchdog = Watchdog(cfg.slo, sampler=pilot.sampler, tracer=pilot.tracer)

    # Observe every delivery at DTN 2 with its time and message type,
    # without disturbing the pilot's own callback.
    deliveries: list[tuple[int, MsgType]] = []
    inner = pilot.dtn2_receiver.on_message

    def observe(packet, header) -> None:
        deliveries.append((pilot.sim.now, header.msg_type))
        if inner is not None:
            inner(packet, header)

    pilot.dtn2_receiver.on_message = observe

    pilot.send_stream(
        cfg.messages, payload_size=cfg.payload_size, interval_ns=cfg.interval_ns
    )
    injector.arm()
    base = pilot.run()

    fault_start, fault_end = plan.start_ns, plan.end_ns
    before = sum(1 for t, _m in deliveries if t < fault_start)
    during = sum(1 for t, _m in deliveries if fault_start <= t <= fault_end)
    after = sum(1 for t, _m in deliveries if t > fault_end)
    # Time to recover: how long past the end of the fault window the
    # last repair (retransmitted delivery) arrived. 0 = no repairs
    # needed after the window, i.e. instant recovery.
    retx_times = [t for t, m in deliveries if m == MsgType.RETX_DATA]
    recovered_at = max(retx_times, default=fault_end)
    sender = pilot.dtn1_sender

    report = ChaosReport(
        messages_sent=base.messages_sent,
        delivered=base.delivered,
        delivered_before=before,
        delivered_during=during,
        delivered_after=after,
        duplicates=base.duplicates,
        unrecovered=base.unrecovered,
        naks_sent=base.naks_sent,
        naks_served=base.naks_served,
        failover_served=(
            pilot.dtn1_buffer.stats.hits if pilot.dtn1_buffer is not None else 0
        ),
        retransmissions=base.retransmissions,
        faults_injected=len(plan),
        faults_fired=len(injector.fired),
        fault_start_ns=fault_start,
        fault_end_ns=fault_end,
        time_to_recover_ns=max(0, recovered_at - fault_end),
        lost_down=pilot.wan_link.stats.lost_down,
        lost_model=pilot.wan_link.stats.lost_model,
        mode_degradations=sender.stats.mode_degradations,
        mode_upgrades=sender.stats.mode_upgrades,
        degraded_final=sender.stats.degraded_final,
        element_degradations=pilot.u280_transition.degradations,
        buffer_failovers=pilot.tofino_nearest.failovers,
        directory_marks_down=(
            pilot.directory.marks_down if pilot.directory is not None else 0
        ),
        link_rate_changes=pilot.wan_link.stats.rate_changes,
        link_delay_changes=pilot.wan_link.stats.delay_changes,
        mode_rewrites=0,
        content_mismatches=0,
    )
    metrics = _collect_metrics(pilot)
    health = None
    if watchdog is not None:
        watchdog.check()
        health = watchdog.report()
    return ChaosRun(
        scenario=cfg.scenario,
        config=cfg,
        report=report,
        pilot=pilot,
        injector=injector,
        metrics=metrics,
        health=health,
    )


def _rewrite_payload(fid: int, index: int, size: int) -> bytes:
    """Deterministic per-message payload for content verification."""
    stamp = f"mrc:{fid}:{index}:".encode()
    return (stamp * (size // len(stamp) + 1))[:size]


def run_mode_rewrite_chaos(cfg: ChaosConfig) -> ChaosRun:
    """Mid-flow shape-shifting under churn, with content verification.

    A multi-flow directory build where, mid-stream: a burst-loss window
    seeds retransmit state; both buffers' directory liveness flaps (so
    every sender degrades and later upgrades); and the U55C's mode map
    is rewritten *while that churn is in flight* — first shifting the
    WAN→DTN2 segment from deliver-check down to age-recover, then back.
    Liveness flaps are control-plane only (buffer contents survive), so
    every sequenced loss must still be recoverable: the acceptance bar
    is ``unrecovered == 0`` **and** a byte-exact payload-digest match
    per flow (``content_mismatches == 0``).

    Reconciliation is per flow against each sender's ``next_seq`` — the
    degraded (identification-only) window relays messages that consume
    no sequence numbers, so relay counts deliberately over-count the
    sequenced space there.
    """
    flows = max(1, cfg.rewrite_flows)
    pilot = PilotTestbed(
        sim=Simulator(seed=cfg.seed),
        config=PilotConfig(
            wan_delay_ns=cfg.wan_delay_ns,
            wan_loss_rate=0.0,
            telemetry=True,
            use_directory=True,
            reliable_from_dtn1=True,
            failover_buffer=True,
            flows=flows,
        ),
    )
    stream = cfg.stream_ns
    directory = pilot.directory
    assert directory is not None and pilot.dtn1_buffer is not None

    # -- the churn script ------------------------------------------------------
    age_recover_id = pilot.registry.by_name("age-recover").config_id
    original_rule = TransitionRule(
        from_config_id=age_recover_id,
        to_mode="deliver-check",
        deadline_offset_ns=pilot.config.deadline_offset_ns,
        notify_addr=pilot.dtn1.ip,
    )
    shifted_rule = TransitionRule(
        from_config_id=age_recover_id, to_mode="age-recover"
    )
    model = GilbertElliottLoss(
        p_good_to_bad=0.05, p_bad_to_good=0.2, loss_good=0.0, loss_bad=0.7
    )
    plan = FaultPlan()
    # Correlated loss early, while every flow is sequenced: the
    # retransmit state the rewrite must not corrupt.
    plan.set_loss_model(pilot.wan_link, model, at_ns=stream // 5)
    plan.clear_loss_model(pilot.wan_link, at_ns=2 * stream // 5)
    # Liveness churn: mark the U280 down (failover re-stamps to DTN 1),
    # then DTN 1 too (no live buffer -> every sender degrades). Marks
    # are control-plane only — contents survive, NAKs still get served.
    plan.at(
        11 * stream // 20,
        lambda: directory.mark_down(pilot.buffer.address),
        kind="directory_down",
        target=pilot.buffer.address,
    )
    plan.at(
        13 * stream // 20,
        lambda: directory.mark_down(pilot.dtn1_buffer.address),
        kind="directory_down",
        target=pilot.dtn1_buffer.address,
    )
    # The shape-shift itself lands mid-churn, while the senders are
    # degraded and retransmit state is outstanding.
    plan.mode_rewrite(pilot.u55c_transition, [shifted_rule], at_ns=3 * stream // 4)
    # Liveness returns only after the last identify relay has *arrived*
    # at the U280 (so none races the upgrade rule into a colliding
    # sequence space — an element-sequenced relay would start at the
    # element register's seq 0 and be dropped as a duplicate of the
    # sender's own seq 0). The stream//20 margin covers that drain for
    # long streams; short streams need the explicit path bound:
    # two DAQ hops plus the DTN1→U280 hop, with per-hop serialization.
    serialization_ns = (
        (cfg.payload_size + 256) * 8 * 1_000_000_000
    ) // pilot.config.link_rate_bps
    relay_drain_ns = 2 * (
        2 * pilot.config.daq_delay_ns + 1 * MICROSECOND + 4 * serialization_ns
    )
    markup_at = stream + max(stream // 20, relay_drain_ns)
    for buffer in (pilot.dtn1_buffer, pilot.buffer):
        plan.at(
            markup_at,
            lambda address=buffer.address: directory.mark_up(address),
            kind="directory_up",
            target=buffer.address,
        )
    plan.mode_rewrite(pilot.u55c_transition, [original_rule], at_ns=11 * stream // 10)
    injector = FaultInjector(pilot.sim, plan)

    # -- deterministic traffic with content accounting -------------------------
    sent_digests: dict[int, dict[bytes, int]] = {f: {} for f in range(flows)}
    got_digests: dict[int, dict[bytes, int]] = {f: {} for f in range(flows)}
    deliveries: list[tuple[int, MsgType]] = []
    inner = pilot.dtn2_receiver.on_message

    def observe(packet, header) -> None:
        deliveries.append((pilot.sim.now, header.msg_type))
        digest = hashlib.sha256(packet.payload or b"").digest()
        bucket = got_digests[header.flow_id or 0]
        bucket[digest] = bucket.get(digest, 0) + 1
        if inner is not None:
            inner(packet, header)

    pilot.dtn2_receiver.on_message = observe

    for j in range(cfg.messages):
        fid, index = j % flows, j // flows
        payload = _rewrite_payload(fid, index, cfg.payload_size)
        digest = hashlib.sha256(payload).digest()
        sent_digests[fid][digest] = sent_digests[fid].get(digest, 0) + 1
        pilot.sim.schedule(
            j * cfg.interval_ns, pilot.send_message, cfg.payload_size, fid, payload
        )
    injector.arm()
    pilot.run(reconcile=False)
    # Per-flow reconciliation against the *sequenced* space actually
    # used: degraded-window messages consumed no sequence numbers.
    for fid in range(flows):
        pilot.dtn2_receiver.request_missing(
            pilot.experiment_id, pilot.dtn1_senders[fid].next_seq, flow_id=fid
        )
    pilot.sim.run()
    base = pilot.report()

    mismatches = 0
    for fid in range(flows):
        digests = set(sent_digests[fid]) | set(got_digests[fid])
        for digest in digests:
            mismatches += abs(
                sent_digests[fid].get(digest, 0) - got_digests[fid].get(digest, 0)
            )

    fault_start, fault_end = plan.start_ns, plan.end_ns
    before = sum(1 for t, _m in deliveries if t < fault_start)
    during = sum(1 for t, _m in deliveries if fault_start <= t <= fault_end)
    after = sum(1 for t, _m in deliveries if t > fault_end)
    retx_times = [t for t, m in deliveries if m == MsgType.RETX_DATA]
    recovered_at = max(retx_times, default=fault_end)
    senders = pilot.dtn1_senders

    report = ChaosReport(
        messages_sent=base.messages_sent,
        delivered=base.delivered,
        delivered_before=before,
        delivered_during=during,
        delivered_after=after,
        duplicates=base.duplicates,
        unrecovered=base.unrecovered,
        naks_sent=base.naks_sent,
        naks_served=base.naks_served,
        failover_served=pilot.dtn1_buffer.stats.hits,
        retransmissions=base.retransmissions,
        faults_injected=len(plan),
        faults_fired=len(injector.fired),
        fault_start_ns=fault_start,
        fault_end_ns=fault_end,
        time_to_recover_ns=max(0, recovered_at - fault_end),
        lost_down=pilot.wan_link.stats.lost_down,
        lost_model=pilot.wan_link.stats.lost_model,
        mode_degradations=sum(s.stats.mode_degradations for s in senders),
        mode_upgrades=sum(s.stats.mode_upgrades for s in senders),
        degraded_final=sum(s.stats.degraded_final for s in senders),
        element_degradations=pilot.u280_transition.degradations,
        buffer_failovers=pilot.tofino_nearest.failovers,
        directory_marks_down=directory.marks_down,
        link_rate_changes=pilot.wan_link.stats.rate_changes,
        link_delay_changes=pilot.wan_link.stats.delay_changes,
        mode_rewrites=pilot.u55c_transition.rewrites
        + sum(s.stats.mode_rewrites for s in senders),
        content_mismatches=mismatches,
    )
    metrics = _collect_metrics(pilot)
    return ChaosRun(
        scenario=cfg.scenario,
        config=cfg,
        report=report,
        pilot=pilot,
        injector=injector,
        metrics=metrics,
    )


def _collect_metrics(pilot: PilotTestbed) -> MetricsRegistry:
    """The pilot's full telemetry scrape plus the fault-path counters
    (directory liveness, per-element re-stamping) — this is where a
    buffer failover is *observable* after the fact."""
    registry = pilot.collect_telemetry()
    registry.counter(
        "nearest_buffer_failovers", element=pilot.tofino.name
    ).set_total(pilot.tofino_nearest.failovers)
    registry.counter(
        "nearest_buffer_stale_stamps", element=pilot.tofino.name
    ).set_total(pilot.tofino_nearest.stale_stamps)
    if pilot.directory is not None:
        registry.counter("buffer_directory_marks_down").set_total(
            pilot.directory.marks_down
        )
        registry.counter("buffer_directory_marks_up").set_total(
            pilot.directory.marks_up
        )
        registry.gauge("buffer_directory_alive").set(pilot.directory.alive_count())
    return registry


def _campaign_configs(cfg: ChaosConfig) -> list[tuple[str, ChaosConfig]]:
    """The (run name, config) matrix ``run_scenarios`` executes."""
    items: list[tuple[str, ChaosConfig]] = []
    for scenario in SCENARIOS:
        items.append((scenario, ChaosConfig(
            scenario=scenario,
            messages=cfg.messages,
            payload_size=cfg.payload_size,
            interval_ns=cfg.interval_ns,
            seed=cfg.seed,
            wan_delay_ns=cfg.wan_delay_ns,
            wan_loss_rate=cfg.wan_loss_rate,
            fleet_nodes=cfg.fleet_nodes,
            fleet_flows=cfg.fleet_flows,
        )))
    items.append(("buffer-failover-degraded", ChaosConfig(
        scenario="buffer-failover",
        messages=cfg.messages,
        payload_size=cfg.payload_size,
        interval_ns=cfg.interval_ns,
        seed=cfg.seed,
        failover=False,
        wan_delay_ns=cfg.wan_delay_ns,
        wan_loss_rate=cfg.wan_loss_rate,
    )))
    return items


def _run_detached(item: tuple[str, ChaosConfig]) -> ChaosRun:
    """Shard worker: run one scenario, return it stripped of live state.

    The simulator, injector, and metrics registry hold bound methods
    and cross-references that must not cross a process boundary; the
    config and the all-ints report pickle cleanly and carry everything
    ``write_bench`` needs.
    """
    name, config = item
    run = run_chaos(config)
    return ChaosRun(
        scenario=name,
        config=run.config,
        report=run.report,
        pilot=None,
        injector=None,
        metrics=None,
        health=run.health,
    )


def run_scenarios(cfg: ChaosConfig, jobs: int = 1) -> list[ChaosRun]:
    """Run every named scenario (plus the no-failover degradation
    variant of ``buffer-failover``) with the same traffic parameters.

    ``jobs > 1`` shards the scenario matrix across worker processes via
    :func:`repro.analysis.shard.run_sharded`. Every scenario owns its
    own seeded simulator, so the reports — and the merged
    ``BENCH_chaos.json`` — are identical for every job count; the only
    difference is that sharded runs come back *detached* (``pilot``,
    ``injector``, and ``metrics`` are ``None``), since live simulation
    objects don't cross process boundaries.
    """
    items = _campaign_configs(cfg)
    if jobs <= 1:
        runs: list[ChaosRun] = []
        for name, config in items:
            run = run_chaos(config)
            run.scenario = name
            runs.append(run)
        return runs
    from ..analysis.shard import run_sharded

    return run_sharded(_run_detached, items, jobs=jobs)


def write_bench(runs: list[ChaosRun], directory: str | Path = ".") -> Path:
    """Write ``BENCH_chaos.json`` from finished runs.

    Deliberately *no* wall-time: every value is simulation-derived, so
    the file is byte-identical for identical seeds — the determinism
    contract chaos runs are held to.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cfg = runs[0].config
    bench = BenchResult(
        name="chaos",
        params={
            "messages": cfg.messages,
            "payload_size": cfg.payload_size,
            "interval_ns": cfg.interval_ns,
            "wan_delay_ns": cfg.wan_delay_ns,
        },
        seed=cfg.seed,
    )
    for run in runs:
        bench.record(run.scenario, **run.report.metrics())
    return bench.write(directory)
