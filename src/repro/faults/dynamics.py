"""Time-varying link dynamics: trajectories instead of step faults.

PR 3's faults are step functions — a link is down or up, a loss model
is installed or not. Real research WANs *drift*: rates sag under
diurnal load, delay ramps as paths re-route, burst-loss regimes worsen
and recover. This module makes those drifts first-class and keeps them
deterministic:

- :class:`Trajectory` — a piecewise value-over-time curve (step or
  linearly interpolated between waypoints, optionally periodic for
  diurnal load shapes). A trajectory is a pure function of the engine
  clock: ``value_at(t)`` has no randomness and no hidden state, so the
  sample sequence is identical on every replay.
- :class:`LinkDynamics` — a self-scheduling driver that applies rate /
  delay / loss trajectories to a live :class:`~repro.netsim.link.Link`
  through :meth:`~repro.netsim.link.Link.reconfigure`. It keeps exactly
  one pending engine event at a time (rescheduling itself at the next
  boundary or sample point), so an hour-long soak doesn't pre-heap
  millions of fault actions, and its horizon is bounded — a run to
  quiescence always terminates.
Scheduled Gilbert–Elliott parameter *drift* rides the existing
:class:`~repro.faults.plan.FaultPlan` machinery
(:meth:`~repro.faults.plan.FaultPlan.ge_drift`): ``(at_ns, params)``
waypoints rewrite an installed model in place via
:meth:`~repro.netsim.loss.GilbertElliottLoss.set_params`, preserving
the regime state and the link's RNG stream so loss draws replay
byte-identically per seed.

Trajectory times are relative to the driver's ``start_ns``, so the same
curve can be armed at any point of a plan. Boundaries land *exactly* on
the engine clock: the driver's application times are the waypoint
boundaries themselves (plus, for linear segments, evenly spaced sample
points), never a rounded approximation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..netsim.link import Link


class Trajectory:
    """A piecewise value-over-time curve on the engine clock.

    ``waypoints`` is a sequence of ``(t_ns, value)`` pairs with strictly
    increasing, non-negative times. Before the first waypoint the first
    value holds; after the last waypoint the last value holds (step) or
    the curve stays flat (linear, non-periodic). With ``period_ns`` set
    the curve repeats: time is taken modulo the period, and a linear
    curve closes the loop by interpolating from the last waypoint back
    to the first value at ``period_ns`` — the diurnal shape.
    """

    def __init__(
        self,
        waypoints: Sequence[tuple[int, float]],
        interpolate: str = "step",
        period_ns: int | None = None,
    ) -> None:
        if not waypoints:
            raise ValueError("trajectory needs at least one waypoint")
        if interpolate not in ("step", "linear"):
            raise ValueError(f"interpolate must be 'step' or 'linear', got {interpolate!r}")
        times = [int(t) for t, _v in waypoints]
        if times[0] < 0:
            raise ValueError(f"waypoint times must be >= 0, got {times[0]}")
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError(
                    f"waypoint times must be strictly increasing ({earlier} -> {later})"
                )
        if period_ns is not None:
            if period_ns <= times[-1]:
                raise ValueError(
                    f"period_ns ({period_ns}) must exceed the last waypoint ({times[-1]})"
                )
            if times[0] != 0:
                raise ValueError("periodic trajectories must start at t=0")
        self.times = times
        self.values = [v for _t, v in waypoints]
        self.interpolate = interpolate
        self.period_ns = int(period_ns) if period_ns is not None else None

    def value_at(self, t_ns: int) -> float:
        """The curve's value at ``t_ns`` (pure, deterministic)."""
        if t_ns < 0:
            raise ValueError(f"time must be >= 0, got {t_ns}")
        if self.period_ns is not None:
            t_ns %= self.period_ns
        index = bisect_right(self.times, t_ns) - 1
        if index < 0:
            return self.values[0]  # before the first waypoint: hold
        if self.interpolate == "step":
            return self.values[index]
        t0, v0 = self.times[index], self.values[index]
        if index + 1 < len(self.times):
            t1, v1 = self.times[index + 1], self.values[index + 1]
        elif self.period_ns is not None:
            t1, v1 = self.period_ns, self.values[0]  # close the loop
        else:
            return v0  # flat past the last waypoint
        return v0 + (v1 - v0) * (t_ns - t0) / (t1 - t0)

    def change_times(
        self, start_ns: int, end_ns: int, sample_every_ns: int
    ) -> list[int]:
        """Trajectory-relative times in ``[start_ns, end_ns]`` where a
        driver must re-apply the curve.

        Step curves change only at waypoint boundaries (repeated every
        period when periodic). Linear curves additionally need sample
        points between boundaries, spaced ``sample_every_ns`` apart and
        anchored at each segment's start so boundaries are always hit
        exactly — never straddled by a sampling grid.
        """
        if sample_every_ns <= 0:
            raise ValueError(f"sample_every_ns must be positive, got {sample_every_ns}")
        if end_ns < start_ns:
            raise ValueError(f"need start_ns <= end_ns, got {start_ns} > {end_ns}")
        boundaries: list[int] = []
        if self.period_ns is None:
            boundaries.extend(self.times)
        else:
            cycle = 0
            while cycle * self.period_ns <= end_ns:
                base = cycle * self.period_ns
                boundaries.extend(base + t for t in self.times)
                cycle += 1
        out: set[int] = set()
        # Past the last boundary a non-periodic curve is flat — there is
        # nothing to sample; a periodic curve keeps changing to the end.
        horizon = end_ns if self.period_ns is not None else min(end_ns, boundaries[-1])
        for i, boundary in enumerate(boundaries):
            if boundary > end_ns:
                break
            if boundary >= start_ns:
                out.add(boundary)
            if self.interpolate != "linear":
                continue
            # Sample inside the segment [boundary, next boundary).
            segment_end = (
                boundaries[i + 1] if i + 1 < len(boundaries) else horizon + 1
            )
            t = boundary + sample_every_ns
            while t < segment_end and t <= end_ns:
                if t >= start_ns:
                    out.add(t)
                t += sample_every_ns
        return sorted(out)

    @classmethod
    def diurnal(
        cls, low: float, high: float, period_ns: int, steps: int = 24
    ) -> "Trajectory":
        """A periodic day-curve: low at t=0, peaking at half period.

        A raised-cosine sampled at ``steps`` points and linearly
        interpolated between them — the classic diurnal load shape.
        Values are rounded to integers at construction so the curve is
        bit-stable regardless of the platform's libm.
        """
        if steps < 2:
            raise ValueError(f"need at least 2 steps, got {steps}")
        if period_ns <= steps:
            raise ValueError(f"period_ns too small for {steps} steps: {period_ns}")
        waypoints = []
        for i in range(steps):
            phase = 2.0 * math.pi * i / steps
            value = low + (high - low) * (1.0 - math.cos(phase)) / 2.0
            waypoints.append((i * period_ns // steps, float(round(value))))
        return cls(waypoints, interpolate="linear", period_ns=period_ns)

    def __repr__(self) -> str:
        period = f", period={self.period_ns}" if self.period_ns is not None else ""
        return (
            f"Trajectory({len(self.times)} waypoints, {self.interpolate}{period})"
        )


class LinkDynamics:
    """Self-scheduling driver applying trajectories to a live link.

    Trajectory times are relative to ``start_ns`` (engine-absolute).
    ``end_ns`` bounds the driver: past it no events remain, so a run to
    quiescence terminates. The default horizon covers every trajectory's
    last boundary — one full cycle for periodic curves.

    Exactly one engine event is pending at any time; each firing applies
    the current values via :meth:`Link.reconfigure` (which counts the
    changes and emits ``link.reconfig`` spans) and schedules the next
    application time. All times come from the trajectories themselves,
    so two seeded runs apply identical values at identical clock ticks.
    """

    def __init__(
        self,
        link: "Link",
        rate_bps: Trajectory | None = None,
        delay_ns: Trajectory | None = None,
        loss_rate: Trajectory | None = None,
        start_ns: int = 0,
        end_ns: int | None = None,
        sample_every_ns: int = 10_000_000,
    ) -> None:
        if rate_bps is None and delay_ns is None and loss_rate is None:
            raise ValueError("need at least one trajectory")
        if start_ns < 0:
            raise ValueError(f"start_ns must be >= 0, got {start_ns}")
        self.link = link
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.loss_rate = loss_rate
        self.start_ns = int(start_ns)
        if end_ns is None:
            span = 0
            for trajectory in (rate_bps, delay_ns, loss_rate):
                if trajectory is None:
                    continue
                last = (
                    trajectory.period_ns
                    if trajectory.period_ns is not None
                    else trajectory.times[-1]
                )
                span = max(span, last)
            end_ns = self.start_ns + span
        if end_ns < self.start_ns:
            raise ValueError(f"end_ns ({end_ns}) before start_ns ({self.start_ns})")
        self.end_ns = int(end_ns)
        relative_end = self.end_ns - self.start_ns
        times: set[int] = {0}  # always apply initial values at start
        for trajectory in (rate_bps, delay_ns, loss_rate):
            if trajectory is None:
                continue
            times.update(trajectory.change_times(0, relative_end, sample_every_ns))
        self._times = sorted(times)
        self._index = 0
        self._armed = False
        #: Applications performed (each may change several attributes).
        self.applied = 0

    def __len__(self) -> int:
        """Number of application times the driver will fire."""
        return len(self._times)

    def arm(self) -> None:
        """Schedule the first application on the link's simulator."""
        if self._armed:
            raise RuntimeError("link dynamics already armed")
        self._armed = True
        sim = self.link.sim
        first = self.start_ns + self._times[0]
        if first < sim.now:
            raise ValueError(
                f"dynamics start {first} is in the past (now={sim.now})"
            )
        sim.schedule(first - sim.now, self._fire)

    def _fire(self) -> None:
        relative = self._times[self._index]
        self.link.reconfigure(
            rate_bps=(
                int(round(self.rate_bps.value_at(relative)))
                if self.rate_bps is not None
                else None
            ),
            propagation_delay_ns=(
                int(round(self.delay_ns.value_at(relative)))
                if self.delay_ns is not None
                else None
            ),
            loss_rate=(
                self.loss_rate.value_at(relative)
                if self.loss_rate is not None
                else None
            ),
        )
        self.applied += 1
        self._index += 1
        if self._index >= len(self._times):
            return  # horizon reached: the driver leaves the event loop
        delta = self._times[self._index] - relative
        self.link.sim.schedule(delta, self._fire)
