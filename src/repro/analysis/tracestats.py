"""Deriving aggregate metrics from causal trace spans.

A trace is the disaggregated form of the telemetry the INT postcards
carry: every ``element.egress`` span stamps the same clock a postcard
would, so per-hop latency and queue-depth histograms rebuilt from spans
must agree with the INT-derived ones — a property the test suite pins
(two independent observers, one truth; see ``repro.trace.verify`` for
the per-packet form of the same check).

:func:`trace_metrics` folds a span list into a
:class:`~repro.telemetry.registry.MetricsRegistry`:

- ``trace_segment_latency_ns{segment="a->b"}`` — time between
  consecutive hops of each packet's path (``packet.send`` →
  ``element.egress``... → ``packet.deliver``), the trace twin of
  ``int_segment_latency_ns``;
- ``trace_queue_depth_pct{hop}`` — egress-time queue occupancy per
  element, the trace twin of ``int_queue_depth_pct``;
- ``trace_events_total{kind}`` — span population by kind.
"""

from __future__ import annotations

from ..telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_PCT_BUCKETS,
    MetricsRegistry,
)

__all__ = ["trace_metrics"]

#: Span kinds that form a packet's hop chain, in causal order.
_CHAIN_KINDS = frozenset({"packet.send", "element.egress", "packet.deliver"})

#: Message types whose egress spans carry comparable queue telemetry
#: (mirrors which packets the INT source marks).
_DATA_MSGS = frozenset({"DATA", "RETX_DATA"})


def trace_metrics(events, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fold trace spans into per-hop latency/queue histograms.

    ``events`` is any iterable of :class:`~repro.trace.TraceEvent`
    (live tracer output or a loaded trace file). Returns the registry
    (a fresh one unless given).
    """
    registry = registry if registry is not None else MetricsRegistry()

    kind_counters: dict[str, object] = {}
    chains: dict[tuple[int, int, int], list] = {}
    for event in events:
        counter = kind_counters.get(event.kind)
        if counter is None:
            counter = registry.counter("trace_events_total", kind=event.kind)
            kind_counters[event.kind] = counter
        counter.inc()
        if event.kind not in _CHAIN_KINDS:
            continue
        identity = event.identity
        if identity is None:
            continue
        chains.setdefault(identity, []).append(event)
        if event.kind == "element.egress" and (event.attrs or {}).get("msg") in _DATA_MSGS:
            registry.histogram(
                "trace_queue_depth_pct",
                buckets=DEFAULT_PCT_BUCKETS,
                hop=event.element,
            ).observe(event.attrs["queue_pct"])

    segment_hists: dict[str, object] = {}
    for identity in sorted(chains):
        chain = sorted(chains[identity], key=lambda e: (e.ts_ns, e.id))
        for previous, current in zip(chain, chain[1:]):
            delta = current.ts_ns - previous.ts_ns
            segment = f"{previous.element}->{current.element}"
            hist = segment_hists.get(segment)
            if hist is None:
                hist = registry.histogram(
                    "trace_segment_latency_ns",
                    buckets=DEFAULT_LATENCY_BUCKETS_NS,
                    segment=segment,
                )
                segment_hists[segment] = hist
            hist.observe(delta)
    return registry
