"""Measurement helpers: latency summaries, throughput, age-of-information.

All latency inputs are integer nanoseconds; summaries report in the
same unit (callers convert for display). Percentiles use the
nearest-rank method so results are exact values from the sample, never
interpolated artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..netsim.units import SECOND


def percentile(samples: list[int] | list[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class LatencySummary:
    """Five-number latency summary (ns)."""

    count: int
    min_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float
    mean_ns: float

    @classmethod
    def of(cls, samples: list[int]) -> "LatencySummary":
        if not samples:
            raise ValueError("cannot summarize zero samples")
        return cls(
            count=len(samples),
            min_ns=float(min(samples)),
            p50_ns=percentile(samples, 0.50),
            p95_ns=percentile(samples, 0.95),
            p99_ns=percentile(samples, 0.99),
            max_ns=float(max(samples)),
            mean_ns=sum(samples) / len(samples),
        )

    def as_ms(self) -> dict[str, float]:
        """The summary converted to milliseconds, for display."""
        return {
            "count": self.count,
            "min": self.min_ns / 1e6,
            "p50": self.p50_ns / 1e6,
            "p95": self.p95_ns / 1e6,
            "p99": self.p99_ns / 1e6,
            "max": self.max_ns / 1e6,
            "mean": self.mean_ns / 1e6,
        }


def goodput_bps(bytes_delivered: int, duration_ns: int) -> float:
    """Delivered application bytes over wall (virtual) time."""
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    return bytes_delivered * 8 * SECOND / duration_ns


@dataclass
class AgeOfInformation:
    """Age-of-information tracker for a periodically-updated source.

    Tracks the classic sawtooth: age grows linearly between deliveries
    and resets to the delivered sample's own age. ``observe`` takes the
    delivery time and the sample's generation time; call ``average``
    at the end for the time-averaged AoI.
    """

    _last_delivery_ns: int | None = None
    _last_age_ns: int = 0
    _weighted_area: float = 0.0
    _span_ns: int = 0
    peak_ns: int = 0

    def observe(self, delivery_ns: int, generated_ns: int) -> None:
        age_at_delivery = delivery_ns - generated_ns
        if age_at_delivery < 0:
            raise ValueError("delivery precedes generation")
        if self._last_delivery_ns is not None:
            gap = delivery_ns - self._last_delivery_ns
            if gap < 0:
                raise ValueError("deliveries must be observed in time order")
            # Area of the trapezoid from last delivery to this one.
            peak = self._last_age_ns + gap
            self._weighted_area += (self._last_age_ns + peak) / 2.0 * gap
            self._span_ns += gap
            self.peak_ns = max(self.peak_ns, peak)
        self._last_delivery_ns = delivery_ns
        self._last_age_ns = age_at_delivery
        self.peak_ns = max(self.peak_ns, age_at_delivery)

    @property
    def average_ns(self) -> float:
        if self._span_ns == 0:
            return float(self._last_age_ns)
        return self._weighted_area / self._span_ns


def jains_fairness(rates: list[float]) -> float:
    """Jain's fairness index over per-flow rates (1.0 = perfectly fair)."""
    if not rates:
        raise ValueError("need at least one rate")
    total = sum(rates)
    squares = sum(r * r for r in rates)
    if squares == 0:
        return 1.0
    return (total * total) / (len(rates) * squares)


def completion_fraction(delivered: int, sent: int) -> float:
    """Delivered fraction, guarding the zero-sent corner."""
    if sent == 0:
        return 1.0
    return delivered / sent
