"""Deterministic multi-core campaign sharding.

A *campaign* is a batch of independent seeded simulation runs — a seed
sweep, a scenario matrix, a parameter grid. Each run already owns its
own :class:`~repro.netsim.engine.Simulator` (and therefore its own
named RNG streams), so runs share no state and can execute in any
order on any core. This module fans a campaign across worker
processes and merges the results with stable ordering, under one
contract:

**the merged artifact is byte-identical for every ``--jobs N``.**

Three rules make that hold:

1. every task is a pure function of its picklable config — workers
   never read global mutable state, and each builds its simulator from
   the config's seed;
2. ``jobs <= 1`` runs the tasks inline, in order, with no worker
   processes at all — so ``--jobs 1`` *is* the sequential baseline by
   construction, not by equivalence argument;
3. results come back in task-submission order (``Pool.map`` preserves
   it), and merge helpers sort by explicit case labels — never by
   completion time.

Workers are spawned with the ``fork`` start method when the platform
offers it (cheap, inherits the imported tree) and fall back to
``spawn`` elsewhere; either way the worker callables live at module
level so they pickle by qualified name.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..telemetry.benchfmt import BenchResult

__all__ = [
    "ShardError",
    "TracedPilotCase",
    "available_cores",
    "campaign_digest",
    "fleet_case_metrics",
    "heartbeat",
    "incast_case_metrics",
    "merge_campaign",
    "merge_counts",
    "merge_series",
    "multiflow_case_metrics",
    "packet_path_shard",
    "packet_train_shard",
    "run_sharded",
    "run_traced_pilot_case",
    "sampled_pilot_series_shard",
    "split_evenly",
]


class ShardError(Exception):
    """Raised for invalid sharding requests."""


def available_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_context():
    """Fork where available (cheap, inherits imports), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def run_sharded(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int = 1,
    progress: Callable[[int, int, Any], None] | None = None,
) -> list[Any]:
    """Apply ``worker`` to every task, fanning across ``jobs`` processes.

    Results are returned in task order regardless of which worker
    finished first. ``jobs <= 1`` (or a single task) runs inline in the
    calling process — the sequential baseline every parallel run must
    reproduce. ``worker`` must be a module-level callable and each task
    must be picklable; both are requirements of the ``spawn`` fallback
    and good hygiene under ``fork``.

    ``progress`` (optional) is called as ``progress(index, total,
    result)`` after each task completes, in task order — the campaign
    heartbeat hook (:func:`heartbeat`). It runs in the calling process
    and never touches the results, so it cannot perturb a campaign.
    """
    if jobs < 0:
        raise ShardError(f"jobs must be >= 0, got {jobs}")
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            result = worker(task)
            if progress is not None:
                progress(index, len(tasks), result)
            results.append(result)
        return results
    processes = min(jobs, len(tasks))
    context = _pool_context()
    with context.Pool(processes=processes) as pool:
        # chunksize=1: tasks are coarse (whole simulations), so favor
        # balance over batching; order is preserved by map()/imap().
        if progress is None:
            return pool.map(worker, tasks, chunksize=1)
        results = []
        for index, result in enumerate(pool.imap(worker, tasks, chunksize=1)):
            progress(index, len(tasks), result)
            results.append(result)
        return results


def heartbeat(prefix: str = "shard", stream=None) -> Callable[[int, int, Any], None]:
    """A ``progress`` callback printing per-shard heartbeat lines.

    Lines go to stderr (or ``stream``) as ``[shard k/n] label`` — the
    label is taken from ``(label, ...)`` tuple results when present, so
    campaign workers get named progress for free.
    """

    def _progress(index: int, total: int, result: Any) -> None:
        label = ""
        if isinstance(result, tuple) and result and isinstance(result[0], str):
            label = result[0]
        line = f"[{prefix} {index + 1}/{total}] {label}".rstrip()
        print(line, file=stream if stream is not None else sys.stderr, flush=True)

    return _progress


# -- merge helpers ------------------------------------------------------------


def merge_campaign(
    name: str,
    labeled_metrics: Sequence[tuple[str, dict]],
    params: dict | None = None,
    seed: int | None = None,
) -> BenchResult:
    """Merge per-case metric dicts into one :class:`BenchResult`.

    Cases are recorded sorted by label — the merge order (and therefore
    the serialized artifact) depends only on the case labels, never on
    which shard finished first. Duplicate labels are rejected: they
    would silently overwrite each other in the metrics dict.
    """
    labels = [label for label, _ in labeled_metrics]
    if len(set(labels)) != len(labels):
        raise ShardError(f"duplicate case labels in campaign: {sorted(labels)}")
    bench = BenchResult(name=name, params=dict(params or {}), seed=seed)
    for label, metrics in sorted(labeled_metrics, key=lambda pair: pair[0]):
        bench.record(label, **metrics)
    return bench


def merge_series(
    labeled_series: Sequence[tuple[str, list[dict]]],
) -> list[dict]:
    """Merge per-shard sample-series records into one campaign set.

    Each shard contributes ``(shard_label, records)`` where records are
    ``repro.obs.series_records`` output; the shard label becomes a
    ``shard`` label on every series, and the merge is sorted by
    ``(metric, labels)`` — the result depends only on the cases, never
    on the job count (pinned by ``repro.obs.series_digest``).
    """
    labels = [label for label, _ in labeled_series]
    if len(set(labels)) != len(labels):
        raise ShardError(f"duplicate shard labels: {sorted(labels)}")
    merged: list[dict] = []
    for shard_label, records in labeled_series:
        for record in records:
            tagged = dict(record["labels"])
            tagged["shard"] = shard_label
            merged.append(
                {
                    "metric": record["metric"],
                    "labels": tagged,
                    "points": [list(point) for point in record["points"]],
                }
            )
    merged.sort(key=lambda r: (r["metric"], sorted(r["labels"].items())))
    return merged


def campaign_digest(results: Any) -> str:
    """sha256 over the canonical JSON of ``results``.

    The pin for shard-determinism tests: identical merged campaigns
    hash identically, regardless of job count or completion order.
    """
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def split_evenly(total: int, shards: int) -> list[int]:
    """Split ``total`` units into ``shards`` near-equal chunks.

    Deterministic: the remainder goes to the *earlier* shards, so the
    split depends only on ``(total, shards)``. Zero-sized chunks are
    dropped (fewer units than shards).
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(total, shards)
    sizes = [base + (1 if i < extra else 0) for i in range(shards)]
    return [size for size in sizes if size > 0]


def merge_counts(shards: Sequence[dict]) -> dict:
    """Sum per-shard operation-count dicts key by key.

    Every perf workload count is a pure function of its arguments, so
    the summed dict is a pure function of the *split* — identical for
    every job count given the same shard sizes and seeds.
    """
    merged: dict[str, int] = {}
    for counts in shards:
        for key, value in counts.items():
            merged[key] = merged.get(key, 0) + value
    return merged


# -- campaign workers ---------------------------------------------------------
#
# Module-level so they pickle under spawn. Each takes one picklable
# config and returns plain data (dicts of ints/floats/strings) — live
# simulation objects never cross the process boundary.


def packet_path_shard(task: tuple[int, int, int]) -> dict:
    """One ``(packets, hops, seed)`` shard of the single-packet workload."""
    from .perf import packet_path_churn

    packets, hops, seed = task
    return packet_path_churn(packets=packets, hops=hops, seed=seed)


def packet_train_shard(task: tuple[int, int, int, int]) -> dict:
    """One ``(packets, hops, train, seed)`` shard of the batched workload."""
    from .perf import packet_train_churn

    packets, hops, train, seed = task
    return packet_train_churn(packets=packets, hops=hops, train=train, seed=seed)


def multiflow_case_metrics(config) -> tuple[str, dict]:
    """Run one :class:`~repro.integration.multiflow.MultiFlowConfig`
    case; returns ``(label, flat metrics)`` suitable for merging."""
    from ..integration.multiflow import MultiFlowOrchestrator

    report = MultiFlowOrchestrator(config).run()
    label = f"seed{config.seed:06d}_flows{config.flows}"
    return label, {
        "flows": report.flows,
        "duration_ns": report.duration_ns,
        "delivered": report.pilot.delivered,
        "messages_sent": report.pilot.messages_sent,
        "unrecovered": report.pilot.unrecovered,
        "retransmissions": report.pilot.retransmissions,
        "aggregate_goodput_bps": round(report.aggregate_goodput_bps, 3),
        "fairness": round(report.fairness, 9),
        "completion_spread_ns": report.completion_spread_ns,
        "complete": int(report.complete),
    }


def incast_case_metrics(config) -> tuple[str, dict]:
    """Run one :class:`~repro.integration.incast.IncastConfig` grid
    cell; returns ``(label, flat metrics)`` suitable for merging."""
    from ..integration.incast import case_label, run_incast

    report = run_incast(config)
    return case_label(config), report.as_metrics()


def fleet_case_metrics(config) -> tuple[str, dict]:
    """Run one :class:`~repro.fleet.orchestrator.FleetConfig` case;
    returns ``(label, flat metrics)`` suitable for merging."""
    from ..fleet.orchestrator import FleetOrchestrator

    report = FleetOrchestrator(config).run()
    label = f"seed{config.seed:06d}_nodes{config.nodes}_flows{config.flows}"
    return label, {
        "nodes": report.nodes,
        "flows": report.flows,
        "delivered": sum(row["delivered"] for row in report.per_flow.values()),
        "unrecovered": sum(row["unrecovered"] for row in report.per_flow.values()),
        "aggregate_goodput_bps": round(report.aggregate_goodput_bps, 3),
        "flow_fairness": round(report.flow_fairness, 9),
        "node_fairness": round(report.node_fairness, 9),
        "completion_spread_ns": report.completion_spread_ns,
        "recovery_ns": report.recovery_ns,
        "complete": int(report.complete),
    }


@dataclass(frozen=True)
class TracedPilotCase:
    """One traced pilot run in a campaign (fully picklable)."""

    seed: int = 42
    messages: int = 100
    flows: int = 1
    payload_size: int = 8000
    interval_ns: int = 2_000
    wan_delay_ns: int = 1_000_000
    wan_loss_rate: float = 0.0
    trace_capacity: int | None = None
    #: On-clock sampling period (0 = no sampler; the historical build).
    sample_every_ns: int = 0
    extra: dict = field(default_factory=dict)


def run_traced_pilot_case(case: TracedPilotCase) -> tuple[str, dict]:
    """Run one traced pilot and return its metrics *and* trace digest.

    The digest (sha256 over the canonical trace serialization) is the
    strongest determinism witness a shard can return: two runs that
    merely agree on summary counters can still have diverged internally,
    but identical digests pin every recorded span.
    """
    from ..dataplane.pilot import PilotConfig, PilotTestbed
    from ..netsim.engine import Simulator
    from ..trace import trace_digest

    from ..obs import series_digest

    config = PilotConfig(
        wan_delay_ns=case.wan_delay_ns,
        wan_loss_rate=case.wan_loss_rate,
        flows=case.flows,
        trace=True,
        trace_capacity=case.trace_capacity,
        sample_every_ns=case.sample_every_ns or None,
        **dict(case.extra),
    )
    pilot = PilotTestbed(sim=Simulator(seed=case.seed), config=config)
    base, extra = divmod(case.messages, case.flows)
    for fid in range(case.flows):
        count = base + (1 if fid < extra else 0)
        pilot.send_stream(
            count,
            payload_size=case.payload_size,
            interval_ns=case.interval_ns,
            flow=fid,
        )
    report = pilot.run()
    label = f"seed{case.seed:06d}_msgs{case.messages}_flows{case.flows}"
    metrics = {
        "messages_sent": report.messages_sent,
        "delivered": report.delivered,
        "unrecovered": report.unrecovered,
        "retransmissions": report.retransmissions,
        "trace_events": len(pilot.tracer.events()),
        "trace_digest": trace_digest(pilot.tracer.events()),
    }
    if pilot.sampler is not None:
        metrics["sample_emits"] = pilot.sampler.sample_emits
        metrics["series_digest"] = series_digest(pilot.sampler)
    return label, metrics


def sampled_pilot_series_shard(case: TracedPilotCase) -> tuple[str, list[dict]]:
    """Shard worker returning one case's full sample series.

    The records feed :func:`merge_series`; the merged set (and its
    ``repro.obs.series_digest``) must be identical for every job count.
    """
    from ..dataplane.pilot import PilotConfig, PilotTestbed
    from ..netsim.engine import Simulator
    from ..obs import series_records

    if not case.sample_every_ns:
        raise ShardError("sampled_pilot_series_shard needs sample_every_ns > 0")
    config = PilotConfig(
        wan_delay_ns=case.wan_delay_ns,
        wan_loss_rate=case.wan_loss_rate,
        flows=case.flows,
        trace=bool(case.trace_capacity),
        trace_capacity=case.trace_capacity,
        sample_every_ns=case.sample_every_ns,
        **dict(case.extra),
    )
    pilot = PilotTestbed(sim=Simulator(seed=case.seed), config=config)
    base, extra = divmod(case.messages, case.flows)
    for fid in range(case.flows):
        count = base + (1 if fid < extra else 0)
        pilot.send_stream(
            count,
            payload_size=case.payload_size,
            interval_ns=case.interval_ns,
            flow=fid,
        )
    pilot.run()
    label = f"seed{case.seed:06d}_msgs{case.messages}_flows{case.flows}"
    return label, series_records(pilot.sampler)
