"""Metrics, report-table helpers, and campaign sharding."""

from .metrics import (
    AgeOfInformation,
    LatencySummary,
    completion_fraction,
    goodput_bps,
    jains_fairness,
    percentile,
)
from .fct import (
    FctCollector,
    FctError,
    FctSummary,
    FlowRecord,
    interpolated_percentile,
)
from .shard import (
    ShardError,
    TracedPilotCase,
    available_cores,
    campaign_digest,
    fleet_case_metrics,
    incast_case_metrics,
    merge_campaign,
    multiflow_case_metrics,
    run_sharded,
    run_traced_pilot_case,
)
from .tables import ResultTable, format_duration, format_rate
from .tracestats import trace_metrics

__all__ = [
    "AgeOfInformation",
    "FctCollector",
    "FctError",
    "FctSummary",
    "FlowRecord",
    "LatencySummary",
    "ResultTable",
    "ShardError",
    "TracedPilotCase",
    "available_cores",
    "campaign_digest",
    "fleet_case_metrics",
    "incast_case_metrics",
    "interpolated_percentile",
    "merge_campaign",
    "multiflow_case_metrics",
    "run_sharded",
    "run_traced_pilot_case",
    "completion_fraction",
    "format_duration",
    "format_rate",
    "goodput_bps",
    "jains_fairness",
    "percentile",
    "trace_metrics",
]
