"""Metrics and report-table helpers."""

from .metrics import (
    AgeOfInformation,
    LatencySummary,
    completion_fraction,
    goodput_bps,
    jains_fairness,
    percentile,
)
from .tables import ResultTable, format_duration, format_rate
from .tracestats import trace_metrics

__all__ = [
    "AgeOfInformation",
    "LatencySummary",
    "ResultTable",
    "completion_fraction",
    "format_duration",
    "format_rate",
    "goodput_bps",
    "jains_fairness",
    "percentile",
    "trace_metrics",
]
