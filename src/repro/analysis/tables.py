"""Plain-text result tables.

Benches print the same rows/series the paper reports; this module
keeps that rendering in one place: fixed-width columns, SI-scaled
rates, and a caption convention (``Table/Figure id — description``)
matching DESIGN.md's experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_rate(bps: float) -> str:
    """Scale a bits/s value to the natural SI unit (as the paper does)."""
    if bps >= 1e12:
        return f"{bps / 1e12:.1f} Tbps"
    if bps >= 1e9:
        return f"{bps / 1e9:.1f} Gbps"
    if bps >= 1e6:
        return f"{bps / 1e6:.1f} Mbps"
    if bps >= 1e3:
        return f"{bps / 1e3:.1f} Kbps"
    return f"{bps:.0f} bps"


def format_duration(ns: float) -> str:
    """Scale nanoseconds to a readable unit."""
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


@dataclass
class ResultTable:
    """A fixed-width text table with a caption."""

    caption: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.caption, rule, line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        return "\n".join(parts)

    def show(self) -> None:
        print()
        print(self.render())
