"""Flow-completion-time extraction (the Fig. 2 head-to-head metric).

A *flow* here is one sender's complete transfer: FCT is the time from
the flow's start (first byte handed to the transport) to the moment the
last byte is known delivered (cumulatively ACKed for TCP, all expected
messages received for MMT, last datagram arrival for UDP). Flows that
never finish within the simulated horizon are first-class citizens of
the report — an incast comparison that silently drops its stragglers
overstates every transport.

Percentiles use *linear interpolation between closest ranks* (the
numpy/Excel "inclusive" method), unlike the nearest-rank
:func:`repro.analysis.metrics.percentile`: FCT distributions are small
(N flows per cell) and heavy-tailed, where nearest-rank p99 of e.g. 16
samples simply returns the maximum and hides tail movement between
transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor


class FctError(ValueError):
    """Raised for invalid FCT bookkeeping."""


def interpolated_percentile(samples: list[int] | list[float], fraction: float) -> float:
    """Linear-interpolated percentile of unsorted ``samples``.

    ``fraction`` is in [0, 1]. With one sample every percentile is that
    sample; with N samples the rank ``fraction * (N - 1)`` is split
    between its two closest order statistics.
    """
    if not samples:
        raise FctError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise FctError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = floor(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class FlowRecord:
    """One flow's lifecycle: started, maybe finished."""

    flow: str
    started_ns: int
    finished_ns: int | None = None

    @property
    def completed(self) -> bool:
        return self.finished_ns is not None

    @property
    def fct_ns(self) -> int:
        if self.finished_ns is None:
            raise FctError(f"flow {self.flow!r} never completed")
        return self.finished_ns - self.started_ns


@dataclass
class FctSummary:
    """Percentile summary over the *completed* flows of a collector.

    ``unfinished`` reports the stragglers explicitly; percentile fields
    are ``None`` when nothing completed (never fabricated).
    """

    flows: int
    completed: int
    unfinished: int
    unfinished_flows: tuple[str, ...]
    p50_ns: float | None
    p95_ns: float | None
    p99_ns: float | None
    mean_ns: float | None
    max_ns: int | None

    def as_metrics(self, prefix: str = "") -> dict:
        """Flatten for BENCH rows (None stays None — visible, not 0)."""
        return {
            f"{prefix}flows": self.flows,
            f"{prefix}completed": self.completed,
            f"{prefix}unfinished": self.unfinished,
            f"{prefix}fct_p50_ns": self.p50_ns,
            f"{prefix}fct_p95_ns": self.p95_ns,
            f"{prefix}fct_p99_ns": self.p99_ns,
            f"{prefix}fct_mean_ns": self.mean_ns,
            f"{prefix}fct_max_ns": self.max_ns,
        }


class FctCollector:
    """Records flow start/finish events and summarizes the FCTs."""

    def __init__(self) -> None:
        self._records: dict[str, FlowRecord] = {}

    def start(self, flow: str, now_ns: int) -> None:
        if flow in self._records:
            raise FctError(f"flow {flow!r} started twice")
        self._records[flow] = FlowRecord(flow=flow, started_ns=now_ns)

    def finish(self, flow: str, now_ns: int) -> None:
        record = self._records.get(flow)
        if record is None:
            raise FctError(f"flow {flow!r} finished but never started")
        if record.finished_ns is not None:
            return  # idempotent: late duplicate completion signals are fine
        if now_ns < record.started_ns:
            raise FctError(f"flow {flow!r} finished before it started")
        record.finished_ns = now_ns

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[FlowRecord]:
        return list(self._records.values())

    def completed_fcts_ns(self) -> list[int]:
        return [r.fct_ns for r in self._records.values() if r.completed]

    def summarize(self) -> FctSummary:
        records = list(self._records.values())
        fcts = [r.fct_ns for r in records if r.completed]
        unfinished = tuple(sorted(r.flow for r in records if not r.completed))
        if fcts:
            return FctSummary(
                flows=len(records),
                completed=len(fcts),
                unfinished=len(unfinished),
                unfinished_flows=unfinished,
                p50_ns=interpolated_percentile(fcts, 0.50),
                p95_ns=interpolated_percentile(fcts, 0.95),
                p99_ns=interpolated_percentile(fcts, 0.99),
                mean_ns=sum(fcts) / len(fcts),
                max_ns=max(fcts),
            )
        return FctSummary(
            flows=len(records),
            completed=0,
            unfinished=len(unfinished),
            unfinished_flows=unfinished,
            p50_ns=None,
            p95_ns=None,
            p99_ns=None,
            mean_ns=None,
            max_ns=None,
        )
