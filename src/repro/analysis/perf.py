"""Deterministic microbenchmark workloads for the two hot layers.

The perf-sensitive layers of the stack are the event engine
(:mod:`repro.netsim.engine`) and the packet path (header stack +
MMT codec). The workloads here drive both with a fixed, seedless
operation pattern and return **operation counts** — never wall time.
Callers (``benchmarks/bench_engine_throughput.py``,
``benchmarks/bench_packet_path.py``, and ``repro bench``) time the
call and derive ``events_per_second`` / ``packets_per_second``.

Keeping the workloads here, importable from both the benchmark suite
and the CLI, guarantees the committed ``BENCH_*.json`` trajectory and
``repro bench`` measure the same thing. The counts are exact functions
of the arguments, so CI can assert them as *operation budgets*: a
change that silently adds work per event or per packet fails the perf
smoke job even on noisy shared runners, where wall-clock thresholds
would flap.
"""

from __future__ import annotations

from ..core.features import Feature
from ..core.header import MmtHeader
from ..netsim.engine import Simulator
from ..netsim.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..netsim.packet import Packet

__all__ = ["engine_event_churn", "packet_path_churn"]

#: 64-bit LCG (Knuth) for delay jitter — deterministic, no ``random``.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def engine_event_churn(
    events: int = 200_000,
    cancel_every: int = 4,
    batch: int = 512,
    horizon_ns: int = 4096,
) -> dict[str, int]:
    """Drive the event engine with a schedule/cancel/dispatch mix.

    Events are scheduled in batches of ``batch`` with LCG-jittered
    delays (so the heap actually sifts), every ``cancel_every``-th one
    is cancelled before it can fire, and after each batch the queue is
    drained. A final mass-restart wave arms ``batch`` timers and
    cancels 90% of them — the retransmission-window pattern that the
    engine's lazy compaction exists for.

    Returns exact operation counts; every value is a pure function of
    the arguments (asserted by the perf smoke job as a budget).
    """
    sim = Simulator(seed=7)
    fired = 0

    def fire() -> None:
        nonlocal fired
        fired += 1

    scheduled = 0
    cancelled = 0
    peak_pending = 0
    state = 0x9E3779B97F4A7C15
    remaining = events
    while remaining > 0:
        n = batch if batch < remaining else remaining
        remaining -= n
        for _ in range(n):
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            event = sim.schedule(state % horizon_ns, fire)
            scheduled += 1
            if scheduled % cancel_every == 0:
                event.cancel()
                cancelled += 1
        pending = sim.pending_events()
        if pending > peak_pending:
            peak_pending = pending
        sim.run()

    # Mass timer restart: arm a wave, cancel 9 in 10 before draining.
    wave = [sim.schedule(1 + (i % 97), fire) for i in range(batch)]
    scheduled += batch
    for i, event in enumerate(wave):
        if i % 10:
            event.cancel()
            cancelled += 1
    sim.run()

    return {
        "scheduled": scheduled,
        "cancelled": cancelled,
        "fired": fired,
        "events_processed": sim.events_processed,
        "peak_pending": peak_pending,
        "final_now_ns": sim.now,
    }


def packet_path_churn(
    packets: int = 20_000, hops: int = 4, tracer=None
) -> dict[str, int]:
    """Drive the packet path with a pilot-shaped per-packet lifecycle.

    Each iteration builds a mode-1-style MMT packet, encapsulates it in
    UDP/IPv4/Ethernet (O(1) pushes), then per hop rewrites hot header
    fields (seq/age — value rewrites that must *not* invalidate the
    memoized size), re-reads ``size_bytes``, and finally encodes the
    MMT header (validate-once path), decodes it back, and decapsulates.

    ``tracer`` exercises the causal-tracing hook pattern on the hot
    path: the per-hop hook is the exact ``is not None`` guard every
    instrumented component uses, so the default ``tracer=None`` run *is*
    the tracing-disabled product path — its operation budget must stay
    identical to the pre-tracing baseline (``trace_emits == 0``).

    Returns exact operation counts (a pure function of the arguments).
    """
    features = Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.AGE_TRACKING
    built = 0
    pushes = 0
    pops = 0
    size_checks = 0
    size_bytes_total = 0
    encoded_bytes = 0
    decodes = 0
    trace_emits = 0
    for i in range(packets):
        mmt = MmtHeader(
            config_id=1,
            features=features,
            experiment_id=(7 << 8) | 1,
            seq=i & 0xFFFFFFFF,
            buffer_addr="10.0.0.1",
            age_ns=0,
            age_budget_ns=5_000_000,
        )
        packet = Packet(headers=[mmt], payload_size=8000)
        built += 1
        packet.push(UdpHeader(src_port=4791, dst_port=4791))
        packet.push(Ipv4Header(src="10.0.0.1", dst="10.0.0.2"))
        packet.push(EthernetHeader())
        pushes += 3
        for hop in range(hops):
            size_bytes_total += packet.size_bytes  # memoized after hop 0
            mmt.age_ns = hop * 1000  # value rewrite: size memo must hold
            size_bytes_total += packet.size_bytes
            size_checks += 2
            if tracer is not None:
                tracer.emit(
                    "element.egress", f"hop{hop}",
                    mmt.experiment_id, 0, mmt.seq, config=mmt.config_id,
                )
                trace_emits += 1
        wire = mmt.encode()  # validates once, then packs in one call
        encoded_bytes += len(wire)
        decoded = MmtHeader.decode(wire)
        decodes += 1
        if decoded.seq != mmt.seq:  # pragma: no cover - codec invariant
            raise AssertionError("round-trip mismatch in perf workload")
        packet.pop()
        packet.pop()
        packet.pop()
        pops += 3
    return {
        "packets": built,
        "pushes": pushes,
        "pops": pops,
        "size_checks": size_checks,
        "size_bytes_total": size_bytes_total,
        "encoded_bytes": encoded_bytes,
        "decodes": decodes,
        "trace_emits": trace_emits,
    }
