"""Deterministic microbenchmark workloads for the two hot layers.

The perf-sensitive layers of the stack are the event engine
(:mod:`repro.netsim.engine`) and the packet path (header stack +
MMT codec). The workloads here drive both with a fixed, seedless
operation pattern and return **operation counts** — never wall time.
Callers (``benchmarks/bench_engine_throughput.py``,
``benchmarks/bench_packet_path.py``, and ``repro bench``) time the
call and derive ``events_per_second`` / ``packets_per_second``.

Keeping the workloads here, importable from both the benchmark suite
and the CLI, guarantees the committed ``BENCH_*.json`` trajectory and
``repro bench`` measure the same thing. The counts are exact functions
of the arguments, so CI can assert them as *operation budgets*: a
change that silently adds work per event or per packet fails the perf
smoke job even on noisy shared runners, where wall-clock thresholds
would flap.
"""

from __future__ import annotations

from ..core.features import Feature
from ..core.header import MmtHeader
from ..core.train import TrainBuffer, decode_train, encode_train
from ..netsim.engine import Simulator
from ..netsim.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..netsim.packet import Packet

__all__ = ["engine_event_churn", "packet_path_churn", "packet_train_churn"]

#: 64-bit LCG (Knuth) for delay jitter — deterministic, no ``random``.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def engine_event_churn(
    events: int = 200_000,
    cancel_every: int = 4,
    batch: int = 512,
    horizon_ns: int = 4096,
) -> dict[str, int]:
    """Drive the event engine with a schedule/cancel/dispatch mix.

    Events are scheduled in batches of ``batch`` with LCG-jittered
    delays (so the heap actually sifts), every ``cancel_every``-th one
    is cancelled before it can fire, and after each batch the queue is
    drained. A final mass-restart wave arms ``batch`` timers and
    cancels 90% of them — the retransmission-window pattern that the
    engine's lazy compaction exists for.

    Returns exact operation counts; every value is a pure function of
    the arguments (asserted by the perf smoke job as a budget).
    """
    sim = Simulator(seed=7)
    fired = 0

    def fire() -> None:
        nonlocal fired
        fired += 1

    scheduled = 0
    cancelled = 0
    peak_pending = 0
    state = 0x9E3779B97F4A7C15
    remaining = events
    while remaining > 0:
        n = batch if batch < remaining else remaining
        remaining -= n
        for _ in range(n):
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            event = sim.schedule(state % horizon_ns, fire)
            scheduled += 1
            if scheduled % cancel_every == 0:
                event.cancel()
                cancelled += 1
        pending = sim.pending_events()
        if pending > peak_pending:
            peak_pending = pending
        sim.run()

    # Mass timer restart: arm a wave, cancel 9 in 10 before draining.
    wave = [sim.schedule(1 + (i % 97), fire) for i in range(batch)]
    scheduled += batch
    for i, event in enumerate(wave):
        if i % 10:
            event.cancel()
            cancelled += 1
    sim.run()

    return {
        "scheduled": scheduled,
        "cancelled": cancelled,
        "fired": fired,
        "events_processed": sim.events_processed,
        "peak_pending": peak_pending,
        "final_now_ns": sim.now,
    }


def packet_path_churn(
    packets: int = 20_000,
    hops: int = 4,
    tracer=None,
    sampler=None,
    seed: int = 7,
) -> dict[str, int]:
    """Drive the packet path with a pilot-shaped per-packet lifecycle.

    Each iteration builds a mode-1-style MMT packet, encapsulates it in
    UDP/IPv4/Ethernet (O(1) pushes), then per hop rewrites hot header
    fields (seq/age — value rewrites that must *not* invalidate the
    memoized size), re-reads ``size_bytes``, and finally encodes the
    MMT header (validate-once path), decodes it back, and decapsulates.

    ``tracer`` exercises the causal-tracing hook pattern on the hot
    path: the per-hop hook is the exact ``is not None`` guard every
    instrumented component uses, so the default ``tracer=None`` run *is*
    the tracing-disabled product path — its operation budget must stay
    identical to the pre-tracing baseline (``trace_emits == 0``).

    ``sampler`` exercises the observability hook the same way: the
    per-hop ``is not None`` guard is the only cost a sampler-less run
    pays, so ``sampler=None`` keeps the budget with ``sample_emits ==
    0``.

    ``seed`` jitters header *values* only (the starting sequence number
    and the per-hop age rewrites go through the LCG), so different
    shards of a campaign exercise different field contents while every
    operation count — including ``size_bytes_total`` and
    ``encoded_bytes``, which depend on the fixed feature set, not the
    values — stays an exact function of ``(packets, hops)``.

    Returns exact operation counts (a pure function of the arguments).
    """
    features = Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.AGE_TRACKING
    state = (seed * _LCG_MULT + _LCG_INC) & _LCG_MASK
    seq_base = state & 0xFFFFFFFF
    built = 0
    pushes = 0
    pops = 0
    size_checks = 0
    size_bytes_total = 0
    encoded_bytes = 0
    decodes = 0
    trace_emits = 0
    sample_emits = 0
    for i in range(packets):
        mmt = MmtHeader(
            config_id=1,
            features=features,
            experiment_id=(7 << 8) | 1,
            seq=(seq_base + i) & 0xFFFFFFFF,
            buffer_addr="10.0.0.1",
            age_ns=0,
            age_budget_ns=5_000_000,
        )
        packet = Packet(headers=[mmt], payload_size=8000)
        built += 1
        packet.push(UdpHeader(src_port=4791, dst_port=4791))
        packet.push(Ipv4Header(src="10.0.0.1", dst="10.0.0.2"))
        packet.push(EthernetHeader())
        pushes += 3
        for hop in range(hops):
            size_bytes_total += packet.size_bytes  # memoized after hop 0
            # Value rewrite (seeded jitter): size memo must hold.
            mmt.age_ns = hop * 1000 + (seq_base & 0xFFF)
            size_bytes_total += packet.size_bytes
            size_checks += 2
            if tracer is not None:
                tracer.emit(
                    "element.egress", f"hop{hop}",
                    mmt.experiment_id, 0, mmt.seq, config=mmt.config_id,
                )
                trace_emits += 1
            if sampler is not None:
                sampler.record("packet_path_age_ns", mmt.age_ns, hop=str(hop))
                sample_emits += 1
        wire = mmt.encode()  # validates once, then packs in one call
        encoded_bytes += len(wire)
        decoded = MmtHeader.decode(wire)
        decodes += 1
        if decoded.seq != mmt.seq:  # pragma: no cover - codec invariant
            raise AssertionError("round-trip mismatch in perf workload")
        packet.pop()
        packet.pop()
        packet.pop()
        pops += 3
    return {
        "packets": built,
        "pushes": pushes,
        "pops": pops,
        "size_checks": size_checks,
        "size_bytes_total": size_bytes_total,
        "encoded_bytes": encoded_bytes,
        "decodes": decodes,
        "trace_emits": trace_emits,
        "sample_emits": sample_emits,
    }


def packet_train_churn(
    packets: int = 20_000,
    hops: int = 4,
    train: int = 32,
    tracer=None,
    sampler=None,
    seed: int = 7,
) -> dict[str, int]:
    """Batched twin of :func:`packet_path_churn`: EJ-FAT-style trains.

    The same number of MMT headers flows through the same per-hop
    lifecycle, but ``train`` headers at a time: one
    :func:`~repro.core.train.encode_train` into a reused
    :class:`~repro.core.train.TrainBuffer`, **one** Packet build and
    one UDP/IPv4/Ethernet encapsulation per train (the train is the
    datagram), per-hop size checks and the
    :meth:`~repro.dataplane.pipeline.Pipeline.can_fast_forward` guard
    once per train, then one :func:`~repro.core.train.decode_train`
    back. Per-packet work that survives batching (codec bytes, decode
    field construction) stays per-packet; everything else amortizes to
    O(packets / train).

    The sender side models a steady-state batched NIC: a pool of
    ``train`` header templates is built once and only the per-element
    fields (``seq``) are rewritten between trains — value rewrites keep
    the validate-once verdict, so validation cost amortizes across the
    whole run exactly as it does for a real flow's header template.

    The pipeline consulted by the fast-forward guard carries one table
    that declares interest in TIMELINESS only — absent from the
    workload's feature set — so the guard must prove the no-op and
    return True every hop (asserted via ``ff_hits``).

    Returns exact operation counts (a pure function of the arguments;
    ``seed`` jitters values only, exactly as in the single-packet
    workload). ``packets`` must be a multiple of ``train``.
    """
    from ..dataplane.pipeline import Action, Pipeline, Table

    if packets % train:
        raise ValueError(f"packets ({packets}) must be a multiple of train ({train})")
    features = Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.AGE_TRACKING
    feature_bits = int(features)
    state = (seed * _LCG_MULT + _LCG_INC) & _LCG_MASK
    seq_base = state & 0xFFFFFFFF

    pipeline = Pipeline("train-churn", stages=4)
    table = Table(
        "deadline_only",
        keys=[],
        default_action=Action("noop", lambda packet, header, meta: None),
        relevant_features=int(Feature.TIMELINESS),
    )
    pipeline.add_table(table)

    trains = packets // train
    buffer = TrainBuffer()
    pool = [
        MmtHeader(
            config_id=1,
            features=features,
            experiment_id=(7 << 8) | 1,
            seq=0,
            buffer_addr="10.0.0.1",
            age_ns=0,
            age_budget_ns=5_000_000,
        )
        for _ in range(train)
    ]
    built = 0
    pushes = 0
    pops = 0
    size_checks = 0
    size_bytes_total = 0
    encoded_bytes = 0
    decodes = 0
    ff_checks = 0
    ff_hits = 0
    trace_emits = 0
    sample_emits = 0
    for t in range(trains):
        headers = pool
        base = seq_base + t * train
        for i, header in enumerate(headers):
            header.seq = (base + i) & 0xFFFFFFFF
        wire = encode_train(headers, buffer)
        encoded_bytes += wire.nbytes
        packet = Packet(payload_size=wire.nbytes + 8000 * train)
        built += 1
        packet.push(UdpHeader(src_port=4791, dst_port=4791))
        packet.push(Ipv4Header(src="10.0.0.1", dst="10.0.0.2"))
        packet.push(EthernetHeader())
        pushes += 3
        for hop in range(hops):
            size_bytes_total += packet.size_bytes
            size_bytes_total += packet.size_bytes
            size_checks += 2
            ff_checks += 1
            if pipeline.can_fast_forward(feature_bits):
                ff_hits += 1
            if tracer is not None:
                tracer.emit(
                    "element.train", f"hop{hop}",
                    (7 << 8) | 1, 0, headers[0].seq, config=1, count=train,
                )
                trace_emits += 1
            if sampler is not None:
                sampler.record(
                    "packet_train_seq", headers[0].seq, hop=str(hop)
                )
                sample_emits += 1
        decoded = decode_train(wire, count=train)
        decodes += train
        if (  # pragma: no cover - codec invariant
            decoded[0].seq != headers[0].seq
            or decoded[-1].seq != headers[-1].seq
        ):
            raise AssertionError("train round-trip mismatch in perf workload")
        packet.pop()
        packet.pop()
        packet.pop()
        pops += 3
    return {
        "packets": trains * train,
        "trains": trains,
        "pushes": pushes,
        "pops": pops,
        "size_checks": size_checks,
        "size_bytes_total": size_bytes_total,
        "encoded_bytes": encoded_bytes,
        "decodes": decodes,
        "ff_checks": ff_checks,
        "ff_hits": ff_hits,
        "trace_emits": trace_emits,
        "sample_emits": sample_emits,
    }
