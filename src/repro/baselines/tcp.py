"""An event-driven TCP model: the baseline DAQ transport of §4.

Implements the mechanisms the paper's comparison hinges on:

- **bytestream with in-order delivery** — the receiver only releases
  data up to the first hole, so one lost segment head-of-line blocks
  every later message (§4.1 point 1);
- **end-to-end recovery** — retransmissions always come from the
  source, so recovery latency is a full path RTT (§4.1 point 2);
- **capacity discovery / congestion avoidance** — slow start plus
  Reno, CUBIC, or a BBR-like rate-based controller; single-stream
  goodput is cwnd/RTT-limited on long fat networks (§4.1);
- **tuning knobs** — window sizes, initial cwnd, pacing: the
  "heavily tuned" configurations DTN operators maintain
  (:mod:`repro.baselines.tuning`).

Simplifications (standard for DES TCP models, none affecting the
compared behaviours): byte sequence numbers start at 0, no ISN
randomization; payload bytes are counted, not materialized; FIN
teardown is omitted — flow completion is "last byte cumulatively
ACKed", the metric benches use; SACK is modelled as exact scoreboard
knowledge at the sender (equivalent to unlimited SACK blocks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..netsim.engine import Timer
from ..netsim.headers import ECN_CE, ECN_ECT0, IpProto, Ipv4Header, TcpHeader
from ..netsim.host import Host
from ..netsim.packet import Packet
from ..netsim.units import MILLISECOND, SECOND


class TcpError(RuntimeError):
    """Raised for TCP stack misuse."""


@dataclass
class TcpConfig:
    """Connection tunables (see :mod:`repro.baselines.tuning` for
    ready-made DTN profiles)."""

    mss: int = 8960  # jumbo-frame fitted
    #: Initial congestion window in segments (RFC 6928 default is 10).
    init_cwnd_segments: int = 10
    #: Receive buffer → advertised window (tuned DTNs use hundreds of MB).
    recv_buffer_bytes: int = 4 * 1024 * 1024
    #: Congestion controller: "reno", "cubic", or "bbr".
    congestion_control: str = "cubic"
    min_rto_ns: int = 200 * MILLISECOND
    initial_rto_ns: int = 1 * SECOND
    max_rto_ns: int = 60 * SECOND
    #: ACK every ``ack_every`` data segments (1 = quickack, 2 = delayed).
    ack_every: int = 1
    #: Delayed-ACK timer: a held ACK is flushed after this long.
    delayed_ack_ns: int = 40 * MILLISECOND
    #: Duplicate-ACK threshold for fast retransmit.
    dupack_threshold: int = 3
    #: RFC 3168 ECN: stamp data segments ECT(0), echo CE as ECE, react
    #: once per window with a congestion-window reduction (no loss needed).
    ecn: bool = False


@dataclass
class TcpStats:
    """Per-connection counters."""

    segments_sent: int = 0
    bytes_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acks_received: int = 0
    dup_acks: int = 0
    segments_received: int = 0
    bytes_delivered: int = 0
    out_of_order_segments: int = 0
    #: CE-marked data segments seen by the receiver (ECN mode).
    ce_marks_received: int = 0
    #: ACKs carrying ECE seen by the sender (ECN mode).
    ece_acks_received: int = 0
    #: Congestion-window reductions triggered by ECE (once per window).
    ecn_reductions: int = 0


# ---------------------------------------------------------------------------
# Congestion control
# ---------------------------------------------------------------------------


class CongestionControl:
    """Interface all controllers implement. cwnd is in bytes."""

    def __init__(self, config: TcpConfig) -> None:
        self.mss = config.mss
        self.cwnd = config.init_cwnd_segments * config.mss
        self.ssthresh = 1 << 62

    def on_ack(self, acked_bytes: int, rtt_ns: int | None, now_ns: int) -> None:
        raise NotImplementedError

    def on_enter_recovery(self, now_ns: int) -> None:
        raise NotImplementedError

    def on_timeout(self, now_ns: int) -> None:
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.mss

    def pacing_rate_bps(self) -> int | None:
        """Bytes are paced at this rate when not None (BBR-style)."""
        return None


class RenoCC(CongestionControl):
    """NewReno: slow start, AIMD congestion avoidance."""

    def on_ack(self, acked_bytes: int, rtt_ns: int | None, now_ns: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_enter_recovery(self, now_ns: int) -> None:
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.ssthresh


class CubicCC(CongestionControl):
    """CUBIC (RFC 8312): cubic window growth in congestion avoidance."""

    C = 0.4  # scaling constant, units of segments/s^3
    BETA = 0.7

    def __init__(self, config: TcpConfig) -> None:
        super().__init__(config)
        self._w_max = 0.0
        self._epoch_start_ns: int | None = None
        self._k_s = 0.0

    def on_ack(self, acked_bytes: int, rtt_ns: int | None, now_ns: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)
            return
        if self._epoch_start_ns is None:
            self._epoch_start_ns = now_ns
            w_max_seg = max(self._w_max / self.mss, self.cwnd / self.mss)
            cwnd_seg = self.cwnd / self.mss
            self._k_s = ((w_max_seg - cwnd_seg) / self.C) ** (1.0 / 3.0) if w_max_seg > cwnd_seg else 0.0
        t_s = (now_ns - self._epoch_start_ns) / SECOND
        w_max_seg = max(self._w_max / self.mss, 2.0)
        target_seg = self.C * (t_s - self._k_s) ** 3 + w_max_seg
        target = int(target_seg * self.mss)
        if target > self.cwnd:
            # Approach the cubic target within one RTT's worth of ACKs.
            self.cwnd += max(1, (target - self.cwnd) // max(self.cwnd // self.mss, 1))
        else:
            self.cwnd += max(1, self.mss * self.mss // (100 * self.cwnd))

    def on_enter_recovery(self, now_ns: int) -> None:
        self._w_max = float(self.cwnd)
        self.ssthresh = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self.cwnd = self.ssthresh
        self._epoch_start_ns = None

    def on_timeout(self, now_ns: int) -> None:
        self._w_max = float(self.cwnd)
        super().on_timeout(now_ns)
        self._epoch_start_ns = None


class BbrLiteCC(CongestionControl):
    """A BBR-flavoured rate-based controller.

    Tracks max delivery rate and min RTT; cwnd is 2×BDP and sends are
    paced at the bandwidth estimate. Loss does not reduce the rate
    (the property that makes BBR attractive on lossy long paths —
    [Tierney et al. 2021] explored BBRv2 for DTNs).
    """

    STARTUP_GAIN = 2.885
    SAMPLE_WINDOW = 64
    #: ProbeBW pacing-gain cycle (RFC-draft BBR shape): probe up one
    #: RTT, drain one RTT, cruise six.
    CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

    def __init__(self, config: TcpConfig) -> None:
        super().__init__(config)
        #: (time, cumulative delivered bytes) samples for rate estimation.
        self._samples: deque[tuple[int, int]] = deque(maxlen=self.SAMPLE_WINDOW)
        #: Max-filter over recent windowed delivery-rate estimates.
        self._bw_filter: deque[tuple[int, float]] = deque()
        self._min_rtt_ns: int | None = None
        self._delivered = 0
        self._startup = True
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._last_check_ns = 0
        self._cycle_index = 0
        self._cycle_start_ns = 0

    def on_ack(self, acked_bytes: int, rtt_ns: int | None, now_ns: int) -> None:
        self._delivered += acked_bytes
        self._samples.append((now_ns, self._delivered))
        if rtt_ns is not None and rtt_ns > 0:
            if self._min_rtt_ns is None or rtt_ns < self._min_rtt_ns:
                self._min_rtt_ns = rtt_ns
        self._update_bw_filter(now_ns)
        bw = self.bandwidth_bps()
        if self._startup:
            grown = min(int(self.cwnd * 1.25) + acked_bytes, 1 << 31)
            if bw > 0 and self._min_rtt_ns:
                # Real BBR keeps startup inflight at cwnd_gain x BDP —
                # the bw filter can't exceed the bottleneck, so this
                # bounds the startup queue to (gain-1) x BDP.
                bdp = int(bw * self._min_rtt_ns / (8 * SECOND))
                grown = min(grown, int(self.STARTUP_GAIN * bdp) + 4 * self.mss)
            self.cwnd = grown
            # Evaluate pipe-full once per RTT-ish epoch, as BBR does.
            epoch = self._min_rtt_ns or 0
            if bw > 0 and now_ns - self._last_check_ns >= epoch:
                self._last_check_ns = now_ns
                if bw <= self._full_bw * 1.25:
                    self._full_bw_count += 1
                    if self._full_bw_count >= 3:
                        self._startup = False
                        self._cycle_start_ns = now_ns
                else:
                    self._full_bw = bw
                    self._full_bw_count = 0
            return
        # ProbeBW: advance the gain cycle once per min-RTT epoch.
        if self._min_rtt_ns and now_ns - self._cycle_start_ns >= self._min_rtt_ns:
            self._cycle_start_ns = now_ns
            self._cycle_index = (self._cycle_index + 1) % len(self.CYCLE_GAINS)
        if bw > 0 and self._min_rtt_ns:
            bdp = int(bw * self._min_rtt_ns / (8 * SECOND))
            self.cwnd = max(2 * bdp, 4 * self.mss)

    def _update_bw_filter(self, now_ns: int) -> None:
        if len(self._samples) < 2:
            return
        (t0, d0), (t1, d1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return
        sample = (d1 - d0) * 8 * SECOND / (t1 - t0)
        self._bw_filter.append((now_ns, sample))
        # Keep ~10 RTTs of history in the max filter.
        horizon = 10 * (self._min_rtt_ns or 1_000_000)
        while self._bw_filter and self._bw_filter[0][0] < now_ns - horizon:
            self._bw_filter.popleft()

    def bandwidth_bps(self) -> float:
        """Max-filtered delivery rate (probing raises it; dips do not
        collapse it, the property that keeps BBR rate-stable)."""
        if not self._bw_filter:
            return 0.0
        return max(sample for _t, sample in self._bw_filter)

    def on_enter_recovery(self, now_ns: int) -> None:
        # BBR is not loss-driven; keep the rate model.
        self.ssthresh = self.cwnd

    def on_timeout(self, now_ns: int) -> None:
        self.cwnd = max(self.cwnd // 2, 4 * self.mss)

    def pacing_rate_bps(self) -> int | None:
        bw = self.bandwidth_bps()
        if bw <= 0:
            return None
        if self._startup:
            gain = self.STARTUP_GAIN
        else:
            gain = self.CYCLE_GAINS[self._cycle_index]
        return int(bw * gain)


def make_congestion_control(config: TcpConfig) -> CongestionControl:
    """Instantiate the controller named in ``config.congestion_control``."""
    name = config.congestion_control.lower()
    if name == "reno":
        return RenoCC(config)
    if name == "cubic":
        return CubicCC(config)
    if name == "bbr":
        return BbrLiteCC(config)
    raise TcpError(f"unknown congestion control {config.congestion_control!r}")


# ---------------------------------------------------------------------------
# Connection
# ---------------------------------------------------------------------------

_CLOSED = "CLOSED"
_SYN_SENT = "SYN_SENT"
_SYN_RCVD = "SYN_RCVD"
_ESTABLISHED = "ESTABLISHED"


@dataclass
class _Segment:
    start: int
    end: int  # exclusive
    sent_at: int
    retransmitted: bool = False


class TcpConnection:
    """One TCP connection endpoint (full state machine both sides)."""

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        config: TcpConfig,
        passive: bool = False,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config
        self.state = _CLOSED
        self.stats = TcpStats()
        self.cc = make_congestion_control(config)
        # --- sender state ---
        self.snd_una = 0
        self.snd_nxt = 0
        self._app_queue_bytes = 0
        self._total_queued = 0
        #: In-flight segments in start order (contiguous snd_una..snd_nxt).
        self._segments: deque[_Segment] = deque()
        self._segment_index: dict[int, _Segment] = {}
        #: Receiver-held (SACKed) byte ranges above snd_una, merged+sorted.
        self._sacked: list[tuple[int, int]] = []
        self._dupacks = 0
        self._in_recovery = False
        self._recovery_point = 0
        #: Hole offsets already retransmitted this recovery episode.
        self._retx_done: set[int] = set()
        self._peer_window = config.recv_buffer_bytes
        self._srtt: int | None = None
        self._rttvar = 0
        self._rto_ns = config.initial_rto_ns
        self._rto_timer = Timer(self.sim, self._on_rto)
        self._pace_timer = Timer(self.sim, self._paced_send)
        self._pacing_armed = False
        self.established_at: int | None = None
        self.on_established: Callable[[], None] | None = None
        self.on_all_acked: Callable[[], None] | None = None
        # message boundaries (cumulative end offsets) for latency probes
        self.message_boundaries: list[tuple[int, int]] = []  # (end offset, queued time)
        self._line_rate_cache: int | None = None
        # --- ECN state (RFC 3168) ---
        #: Receiver: echo ECE on outgoing ACKs until the peer's CWR arrives.
        self._ece_pending = False
        #: Sender: set CWR on the next data segment after an ECE reaction.
        self._cwr_pending = False
        #: Sender: snd_nxt at the last ECE reaction (once-per-window gate).
        self._ecn_recovery_point = 0
        # --- receiver state ---
        self.rcv_nxt = 0
        self._ooo: list[tuple[int, int]] = []  # disjoint, sorted [start, end)
        self._segs_since_ack = 0
        self._delack_timer = Timer(self.sim, self._emit_ack)
        self.on_delivered: Callable[[int, int], None] | None = None  # (bytes, total)

    # -- public API ---------------------------------------------------------------

    def connect(self) -> None:
        """Begin the three-way handshake (active open)."""
        if self.state != _CLOSED:
            raise TcpError("connect() on a non-closed connection")
        self.state = _SYN_SENT
        self._send_control(syn=True)
        self._rto_timer.start(self._rto_ns)

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes <= 0:
            raise TcpError("send size must be positive")
        self._app_queue_bytes += nbytes
        self._total_queued += nbytes
        if self.state == _ESTABLISHED:
            self._try_send()

    def send_message(self, nbytes: int) -> None:
        """Queue a delimited message (records its boundary for probes)."""
        self.send(nbytes)
        self.message_boundaries.append((self._total_queued, self.sim.now))

    @property
    def bytes_unacked(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def all_acked(self) -> bool:
        return self._app_queue_bytes == 0 and self.snd_una == self.snd_nxt

    # -- segment I/O -----------------------------------------------------------------

    def _send_control(self, syn: bool = False, ack: bool = False) -> None:
        header = TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flag_syn=syn,
            flag_ack=ack,
            window=self.config.recv_buffer_bytes,
        )
        self.stack.host.send_ip(
            self.remote_ip, IpProto.TCP, [header], payload_size=0,
            meta={"flow": f"tcp:{self.local_port}->{self.remote_port}"},
        )

    def _send_data_segment(self, start: int, size: int, retransmit: bool = False) -> None:
        cwr = False
        if self.config.ecn and self._cwr_pending:
            cwr = True
            self._cwr_pending = False
        header = TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=start,
            ack=self.rcv_nxt,
            flag_ack=True,
            flag_cwr=cwr,
            window=self.config.recv_buffer_bytes,
        )
        self.stack.host.send_ip(
            self.remote_ip, IpProto.TCP, [header], payload_size=size,
            meta={"flow": f"tcp:{self.local_port}->{self.remote_port}"},
            ecn=ECN_ECT0 if self.config.ecn else 0,
        )
        self.stats.segments_sent += 1
        self.stats.bytes_sent += size
        if retransmit:
            self.stats.retransmits += 1

    # -- sending logic ---------------------------------------------------------------

    def _window_available(self) -> int:
        usable = min(self.cc.cwnd, self._peer_window)
        return max(0, usable - self.bytes_unacked)

    def _local_line_rate_bps(self) -> int | None:
        """The slowest local interface rate — fq-style pacing never
        exceeds it (packets would only pile up in the local qdisc)."""
        if self._line_rate_cache is None:
            rates = [
                port.link.rate_bps
                for port in self.stack.host.ports.values()
                if port.link is not None
            ]
            self._line_rate_cache = min(rates) if rates else 0
        return self._line_rate_cache or None

    def _effective_pacing_bps(self) -> int | None:
        pacing = self.cc.pacing_rate_bps()
        if pacing is None:
            return None
        line = self._local_line_rate_bps()
        if line is not None:
            # Leave headroom for per-packet framing overhead.
            pacing = min(pacing, int(line * 0.98))
        return pacing

    def _try_send(self) -> None:
        pacing = self._effective_pacing_bps()
        if pacing:
            if not self._pacing_armed:
                self._pacing_armed = True
                self._paced_send()
            return
        while self._app_queue_bytes > 0 and self._window_available() >= min(
            self.config.mss, self._app_queue_bytes
        ):
            self._emit_next_segment()

    def _paced_send(self) -> None:
        self._pacing_armed = False
        if self._app_queue_bytes <= 0:
            return
        if self._window_available() < min(self.config.mss, self._app_queue_bytes):
            # Window-limited: the next ACK restarts pacing.
            return
        size = self._emit_next_segment()
        pacing = self._effective_pacing_bps()
        if pacing and self._app_queue_bytes > 0:
            gap_ns = max(1, (size * 8 * SECOND) // pacing)
            self._pace_timer.start(gap_ns)
            self._pacing_armed = True

    def _emit_next_segment(self) -> int:
        size = min(self.config.mss, self._app_queue_bytes)
        start = self.snd_nxt
        segment = _Segment(start, start + size, self.sim.now)
        self._segments.append(segment)
        self._segment_index[start] = segment
        self.snd_nxt += size
        self._app_queue_bytes -= size
        self._send_data_segment(start, size)
        if not self._rto_timer.running:
            self._rto_timer.start(self._rto_ns)
        return size

    # -- receive path ------------------------------------------------------------------

    def handle_segment(self, packet: Packet, header: TcpHeader) -> None:
        if self.state == _SYN_SENT:
            if header.flag_syn and header.flag_ack:
                self._establish()
                self._send_control(ack=True)
                self._try_send()
            return
        if self.state == _SYN_RCVD:
            if header.flag_syn and not header.flag_ack:
                # Our SYN-ACK was lost; the client retried its SYN.
                self._send_control(syn=True, ack=True)
                return
            if header.flag_ack and not header.flag_syn:
                self._establish()
            # fall through: the ACK may carry data
        if self.state not in (_ESTABLISHED, _SYN_RCVD):
            return
        if header.flag_syn:
            return  # duplicate SYN
        self._peer_window = header.window
        if header.flag_ack:
            self._process_ack(header)
        if packet.payload_size > 0:
            self._process_data(packet, header)

    def _establish(self) -> None:
        if self.state != _ESTABLISHED:
            self.state = _ESTABLISHED
            self.established_at = self.sim.now
            self._rto_timer.stop()
            if self.on_established is not None:
                self.on_established()

    # -- ACK processing (sender side) ---------------------------------------------------

    def _process_ack(self, header: TcpHeader) -> None:
        ack = header.ack
        self.stats.acks_received += 1
        if header.flag_ece and self.config.ecn:
            self.stats.ece_acks_received += 1
            # React at most once per window of data (RFC 3168 §6.1.2):
            # a new reduction only once the window sent at the previous
            # reduction has been fully acknowledged.
            if ack > self._ecn_recovery_point or self._ecn_recovery_point == 0:
                self._ecn_recovery_point = self.snd_nxt
                self._cwr_pending = True
                self.stats.ecn_reductions += 1
                self.cc.on_enter_recovery(self.sim.now)
        for block_start, block_end in header.sack_blocks:
            self._mark_sacked(block_start, block_end)
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self._dupacks = 0
            rtt = self._retire_segments(ack)
            if rtt is not None:
                self._update_rto(rtt)
            if self._in_recovery and ack >= self._recovery_point:
                self._in_recovery = False
                self._retx_done.clear()
            self.cc.on_ack(acked, rtt, self.sim.now)
            if self.snd_una == self.snd_nxt:
                self._rto_timer.stop()
                if self.all_acked and self.on_all_acked is not None:
                    self.on_all_acked()
            else:
                self._rto_timer.start(self._rto_ns)
            if self._in_recovery:
                self._retransmit_first_hole()
            self._try_send()
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._dupacks += 1
            self.stats.dup_acks += 1
            if self._dupacks == self.config.dupack_threshold and not self._in_recovery:
                self._enter_recovery()
            elif self._in_recovery:
                self._retransmit_first_hole()
                self._try_send()

    def _mark_sacked(self, start: int, end: int) -> None:
        """Merge a SACK block into the interval scoreboard."""
        if end <= self.snd_una:
            return
        start = max(start, self.snd_una)
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in self._sacked:
            if end < s or start > e:
                merged.append((s, e))
                continue
            start = min(start, s)
            end = max(end, e)
        for i, (s, _e) in enumerate(merged):
            if start < s:
                merged.insert(i, (start, end))
                placed = True
                break
        if not placed:
            merged.append((start, end))
        self._sacked = merged

    def _retire_segments(self, ack: int) -> int | None:
        rtt: int | None = None
        while self._segments and self._segments[0].end <= ack:
            segment = self._segments.popleft()
            self._segment_index.pop(segment.start, None)
            if not segment.retransmitted:
                rtt = self.sim.now - segment.sent_at
        self._sacked = [(max(s, ack), e) for s, e in self._sacked if e > ack]
        return rtt

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recovery_point = self.snd_nxt
        self._retx_done.clear()
        self.stats.fast_retransmits += 1
        self.cc.on_enter_recovery(self.sim.now)
        self._retransmit_first_hole()

    def _first_hole_offset(self) -> int | None:
        """The lowest unacked byte offset the receiver does not hold."""
        if self.snd_una >= self.snd_nxt:
            return None
        hole = self.snd_una
        for s, e in self._sacked:
            if s > hole:
                break
            hole = max(hole, e)
        return hole if hole < self.snd_nxt else None

    def _retransmit_first_hole(self, force: bool = False) -> None:
        hole = self._first_hole_offset()
        if hole is None:
            return
        if hole in self._retx_done and not force:
            return  # already retransmitted this episode; wait for news
        segment = self._segment_index.get(hole)
        if segment is None:
            # Hole offset should align with a segment start (SACK blocks
            # are segment-granular); if not, fall back to the front.
            segment = self._segments[0] if self._segments else None
        if segment is None:
            return
        self._retx_done.add(segment.start)
        segment.retransmitted = True
        segment.sent_at = self.sim.now
        self._send_data_segment(segment.start, segment.end - segment.start, retransmit=True)

    def _on_rto(self) -> None:
        if self.state == _SYN_SENT:
            self.stats.timeouts += 1
            self._send_control(syn=True)
            self._rto_ns = min(self._rto_ns * 2, self.config.max_rto_ns)
            self._rto_timer.start(self._rto_ns)
            return
        if self.snd_una == self.snd_nxt:
            return
        self.stats.timeouts += 1
        self.cc.on_timeout(self.sim.now)
        # Everything in flight at the timeout is presumed lost: stay in
        # recovery until it is all re-acknowledged, retransmitting the
        # next hole as each ACK returns. Without this, a flow that lost
        # a full window (deep incast) advances one segment per *doubled*
        # RTO — ``bytes_unacked`` counts the presumed-lost bytes against
        # cwnd and no ACKs arrive to clock anything out.
        self._in_recovery = True
        self._recovery_point = self.snd_nxt
        self._dupacks = 0
        self._sacked = []  # RFC 6582: timeout clears the scoreboard
        self._retx_done.clear()
        self._retransmit_first_hole(force=True)
        self._rto_ns = min(self._rto_ns * 2, self.config.max_rto_ns)
        self._rto_timer.start(self._rto_ns)

    def _update_rto(self, rtt_ns: int) -> None:
        if self._srtt is None:
            self._srtt = rtt_ns
            self._rttvar = rtt_ns // 2
        else:
            delta = abs(self._srtt - rtt_ns)
            self._rttvar = (3 * self._rttvar + delta) // 4
            self._srtt = (7 * self._srtt + rtt_ns) // 8
        self._rto_ns = max(self.config.min_rto_ns, self._srtt + 4 * self._rttvar)

    # -- data processing (receiver side) ----------------------------------------------

    def _process_data(self, packet: Packet, header: TcpHeader) -> None:
        self.stats.segments_received += 1
        if self.config.ecn:
            if header.flag_cwr:
                # Sender reacted; stop echoing ECE (RFC 3168 §6.1.3).
                self._ece_pending = False
            ip = packet.find(Ipv4Header)
            if ip is not None and ip.ecn == ECN_CE:
                # Checked after CWR so a CE-marked CWR segment still
                # starts a fresh ECE episode.
                self._ece_pending = True
                self.stats.ce_marks_received += 1
        start, end = header.seq, header.seq + packet.payload_size
        if end <= self.rcv_nxt:
            self._emit_ack()  # pure duplicate, re-ACK
            return
        if start > self.rcv_nxt:
            self.stats.out_of_order_segments += 1
            self._insert_ooo(start, end)
            self._emit_ack(force=True)
            return
        # In-order (possibly overlapping) data: advance rcv_nxt.
        self.rcv_nxt = max(self.rcv_nxt, end)
        self._absorb_ooo()
        delivered = self.rcv_nxt
        self.stats.bytes_delivered = delivered
        if self.on_delivered is not None:
            self.on_delivered(end - start, delivered)
        self._segs_since_ack += 1
        if self._segs_since_ack >= self.config.ack_every:
            self._emit_ack()
        elif not self._delack_timer.running:
            self._delack_timer.start(self.config.delayed_ack_ns)

    def _insert_ooo(self, start: int, end: int) -> None:
        intervals = self._ooo + [(start, end)]
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ooo = merged

    def _absorb_ooo(self) -> None:
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            _s, e = self._ooo.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, e)

    def _emit_ack(self, force: bool = False) -> None:
        self._segs_since_ack = 0
        self._delack_timer.stop()
        sack_blocks = tuple(self._ooo[-3:])
        header = TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flag_ack=True,
            flag_ece=self._ece_pending,
            window=self.config.recv_buffer_bytes,
            sack_blocks=sack_blocks,
        )
        self.stack.host.send_ip(
            self.remote_ip, IpProto.TCP, [header], payload_size=0,
            meta={"flow": f"tcp-ack:{self.local_port}->{self.remote_port}"},
        )


# ---------------------------------------------------------------------------
# Stack
# ---------------------------------------------------------------------------


class TcpStack:
    """Per-host TCP: connection table, listeners, demux."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim = host.sim
        self._connections: dict[tuple[int, str, int], TcpConnection] = {}
        self._listeners: dict[int, tuple[TcpConfig, Callable[[TcpConnection], None] | None]] = {}
        self._next_port = 40000
        self.rx_no_connection = 0
        host.register_l3_protocol(IpProto.TCP, self._receive)

    def listen(
        self,
        port: int,
        config: TcpConfig | None = None,
        on_connection: Callable[[TcpConnection], None] | None = None,
    ) -> None:
        if port in self._listeners:
            raise TcpError(f"{self.host.name}: TCP port {port} already listening")
        self._listeners[port] = (config or TcpConfig(), on_connection)

    def connect(
        self,
        remote_ip: str,
        remote_port: int,
        config: TcpConfig | None = None,
        local_port: int | None = None,
    ) -> TcpConnection:
        port = local_port if local_port is not None else self._allocate_port()
        connection = TcpConnection(
            self, port, remote_ip, remote_port, config or TcpConfig()
        )
        self._connections[(port, remote_ip, remote_port)] = connection
        connection.connect()
        return connection

    def _allocate_port(self) -> int:
        self._next_port += 1
        return self._next_port

    def _receive(self, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        ip = packet.find(Ipv4Header)
        if tcp is None or ip is None:
            self.rx_no_connection += 1
            return
        key = (tcp.dst_port, ip.src, tcp.src_port)
        connection = self._connections.get(key)
        if connection is None and tcp.flag_syn and not tcp.flag_ack:
            listener = self._listeners.get(tcp.dst_port)
            if listener is None:
                self.rx_no_connection += 1
                return
            config, on_connection = listener
            connection = TcpConnection(
                self, tcp.dst_port, ip.src, tcp.src_port, config, passive=True
            )
            connection.state = _SYN_RCVD
            self._connections[key] = connection
            connection._send_control(syn=True, ack=True)
            if on_connection is not None:
                on_connection(connection)
            return
        if connection is None:
            self.rx_no_connection += 1
            return
        connection.handle_segment(packet, tcp)
