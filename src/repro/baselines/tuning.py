"""DTN tuning profiles for the TCP baseline.

"Across all stages where it is used, TCP is heavily tuned to support
high data rates" (§4). These profiles capture the ladder of tuning a
Data Transfer Node operator climbs (fasterdata-style guidance): from
an untuned distro default to a fully tuned 100 GbE DTN. Benches use
them to make the baseline *fair* — the paper's comparison is against
tuned TCP, not a strawman.
"""

from __future__ import annotations

from ..netsim.units import MILLISECOND
from .tcp import TcpConfig

#: Standard Ethernet MSS (1500 MTU minus headers).
STANDARD_MSS = 1460
#: Jumbo-frame MSS (9000 MTU minus headers) — DAQ networks remove
#: fragmentation by configuring jumbo MTUs end to end (§2.1).
JUMBO_MSS = 8960


def untuned() -> TcpConfig:
    """A distro-default host: small buffers, standard frames, CUBIC."""
    return TcpConfig(
        mss=STANDARD_MSS,
        recv_buffer_bytes=212_992,  # Linux default tcp_rmem max before autotuning
        congestion_control="cubic",
        ack_every=2,
    )


def tuned_10g() -> TcpConfig:
    """A 10 GbE-era tuned host: 32 MB buffers, jumbo frames."""
    return TcpConfig(
        mss=JUMBO_MSS,
        recv_buffer_bytes=32 * 1024 * 1024,
        congestion_control="cubic",
        ack_every=1,
    )


def tuned_100g() -> TcpConfig:
    """A modern tuned DTN: buffers sized for ~100 ms × 100 Gb/s paths."""
    return TcpConfig(
        mss=JUMBO_MSS,
        recv_buffer_bytes=1024 * 1024 * 1024,
        congestion_control="cubic",
        init_cwnd_segments=10,
        min_rto_ns=200 * MILLISECOND,
        ack_every=1,
    )


def tuned_100g_bbr() -> TcpConfig:
    """The BBR variant DTN operators increasingly deploy on lossy paths."""
    config = tuned_100g()
    config.congestion_control = "bbr"
    return config


def profile(name: str) -> TcpConfig:
    """Look up a profile by name ("untuned", "10g", "100g", "100g-bbr")."""
    profiles = {
        "untuned": untuned,
        "10g": tuned_10g,
        "100g": tuned_100g,
        "100g-bbr": tuned_100g_bbr,
    }
    if name not in profiles:
        raise KeyError(f"unknown tuning profile {name!r}")
    return profiles[name]()
