"""UDP baseline: today's DAQ-network transport (§4).

"When a transport is used in a DAQ network, it is usually UDP (as done
in DUNE)". A :class:`UdpStack` registers with a host and demultiplexes
datagrams to bound :class:`UdpSocket` s by destination port. No
reliability, no ordering, no flow control — exactly what the DAQ
segment relies on capacity planning to survive.
"""

from __future__ import annotations

from typing import Callable

from ..netsim.headers import IpProto, Ipv4Header, UdpHeader
from ..netsim.host import Host
from ..netsim.packet import Packet

DatagramHandler = Callable[[Packet, "UdpSocket"], None]


class UdpError(RuntimeError):
    """Raised for UDP stack misuse."""


class UdpSocket:
    """A bound UDP endpoint."""

    def __init__(self, stack: "UdpStack", port: int) -> None:
        self.stack = stack
        self.port = port
        self.on_datagram: DatagramHandler | None = None
        self.rx_datagrams = 0
        self.rx_bytes = 0
        self.tx_datagrams = 0
        self.tx_bytes = 0

    def send_to(
        self,
        dst_ip: str,
        dst_port: int,
        payload_size: int,
        payload: bytes | None = None,
        meta: dict | None = None,
    ) -> bool:
        """Transmit one datagram; returns False on local drop."""
        header = UdpHeader(src_port=self.port, dst_port=dst_port)
        sent = self.stack.host.send_ip(
            dst_ip,
            IpProto.UDP,
            [header],
            payload_size=payload_size,
            payload=payload,
            meta=meta,
        )
        if sent:
            self.tx_datagrams += 1
            self.tx_bytes += payload_size
        return sent

    def close(self) -> None:
        self.stack.release(self.port)

    def _deliver(self, packet: Packet) -> None:
        self.rx_datagrams += 1
        self.rx_bytes += packet.payload_size
        if self.on_datagram is not None:
            self.on_datagram(packet, self)


class UdpStack:
    """Per-host UDP: port table and demux."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._sockets: dict[int, UdpSocket] = {}
        self.rx_no_socket = 0
        host.register_l3_protocol(IpProto.UDP, self._receive)

    def bind(self, port: int, on_datagram: DatagramHandler | None = None) -> UdpSocket:
        """Bind a socket to ``port``; raises if the port is taken."""
        if port in self._sockets:
            raise UdpError(f"{self.host.name}: UDP port {port} already bound")
        socket = UdpSocket(self, port)
        socket.on_datagram = on_datagram
        self._sockets[port] = socket
        return socket

    def release(self, port: int) -> None:
        self._sockets.pop(port, None)

    def _receive(self, packet: Packet) -> None:
        udp = packet.find(UdpHeader)
        if udp is None:
            self.rx_no_socket += 1
            return
        socket = self._sockets.get(udp.dst_port)
        if socket is None:
            self.rx_no_socket += 1
            return
        socket._deliver(packet)


def remote_address(packet: Packet) -> tuple[str, int]:
    """(source IP, source port) of a received datagram."""
    ip = packet.require(Ipv4Header)
    udp = packet.require(UdpHeader)
    return ip.src, udp.src_port
