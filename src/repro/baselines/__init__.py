"""Today's DAQ transports (§4): tuned TCP and UDP baselines."""

from .tcp import (
    BbrLiteCC,
    CongestionControl,
    CubicCC,
    RenoCC,
    TcpConfig,
    TcpConnection,
    TcpError,
    TcpStack,
    TcpStats,
    make_congestion_control,
)
from .tuning import (
    JUMBO_MSS,
    STANDARD_MSS,
    profile,
    tuned_10g,
    tuned_100g,
    tuned_100g_bbr,
    untuned,
)
from .udp import UdpError, UdpSocket, UdpStack, remote_address

__all__ = [
    "BbrLiteCC",
    "CongestionControl",
    "CubicCC",
    "JUMBO_MSS",
    "RenoCC",
    "STANDARD_MSS",
    "TcpConfig",
    "TcpConnection",
    "TcpError",
    "TcpStack",
    "TcpStats",
    "UdpError",
    "UdpSocket",
    "UdpStack",
    "make_congestion_control",
    "profile",
    "remote_address",
    "tuned_10g",
    "tuned_100g",
    "tuned_100g_bbr",
    "untuned",
]
