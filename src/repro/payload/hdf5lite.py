"""A self-contained hierarchical container format ("HDF5-lite").

§6 challenge 2 asks how to "integrate payload processing along the
path? For example, DPDK-capable or FPGA resources could be used to
[...] transcode into other formats, such as HDF5 which is ubiquitously
used for storage in scientific computing."

Real HDF5 is a large external dependency; this module implements the
subset the transcoding path needs — groups, typed n-dimensional
datasets, and attributes — as a compact, byte-exact binary format, so
in-path transcoding is a real bytes-to-bytes transform the tests can
round-trip.

Layout (all integers big-endian)::

    file    := magic "HL1\\0" root:group
    group   := 0x01 name nattrs attr* nchildren node*
    dataset := 0x02 name dtype:u8 ndim:u8 dim:u32* nattrs attr* raw
    attr    := name tag:u8 value   (tag 0=int64, 1=float64, 2=str)
    name/str:= len:u16 utf8
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

MAGIC = b"HL1\x00"

#: dtype code ↔ numpy dtype (big-endian on the wire).
_DTYPES: dict[int, str] = {0: ">u2", 1: ">u4", 2: ">i4", 3: ">i8", 4: ">f4", 5: ">f8"}
_DTYPE_CODES = {np.dtype(v): k for k, v in _DTYPES.items()}

AttrValue = int | float | str


class Hdf5LiteError(ValueError):
    """Raised on malformed containers."""


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise Hdf5LiteError(f"string too long ({len(raw)} bytes)")
    return struct.pack(">H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(data):
        raise Hdf5LiteError("truncated string length")
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    if offset + length > len(data):
        raise Hdf5LiteError("truncated string body")
    return data[offset : offset + length].decode("utf-8"), offset + length


def _pack_attrs(attrs: dict[str, AttrValue]) -> bytes:
    out = bytearray(struct.pack(">H", len(attrs)))
    for name, value in attrs.items():
        out += _pack_str(name)
        if isinstance(value, bool):
            raise Hdf5LiteError("boolean attributes are not supported")
        if isinstance(value, int):
            out += struct.pack(">Bq", 0, value)
        elif isinstance(value, float):
            out += struct.pack(">Bd", 1, value)
        elif isinstance(value, str):
            out += struct.pack(">B", 2) + _pack_str(value)
        else:
            raise Hdf5LiteError(f"unsupported attribute type {type(value)}")
    return bytes(out)


def _unpack_attrs(data: bytes, offset: int) -> tuple[dict[str, AttrValue], int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    attrs: dict[str, AttrValue] = {}
    for _ in range(count):
        name, offset = _unpack_str(data, offset)
        (tag,) = struct.unpack_from(">B", data, offset)
        offset += 1
        if tag == 0:
            (value,) = struct.unpack_from(">q", data, offset)
            offset += 8
        elif tag == 1:
            (value,) = struct.unpack_from(">d", data, offset)
            offset += 8
        elif tag == 2:
            value, offset = _unpack_str(data, offset)
        else:
            raise Hdf5LiteError(f"unknown attribute tag {tag}")
        attrs[name] = value
    return attrs, offset


@dataclass
class Dataset:
    """A typed n-dimensional array with attributes."""

    name: str
    data: np.ndarray
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        wire = self.data.dtype.newbyteorder(">")
        if wire not in _DTYPE_CODES:
            raise Hdf5LiteError(f"unsupported dtype {self.data.dtype}")

    def encode(self) -> bytes:
        wire_dtype = self.data.dtype.newbyteorder(">")
        code = _DTYPE_CODES[wire_dtype]
        out = bytearray(b"\x02")
        out += _pack_str(self.name)
        out += struct.pack(">BB", code, self.data.ndim)
        for dim in self.data.shape:
            out += struct.pack(">I", dim)
        out += _pack_attrs(self.attrs)
        out += self.data.astype(wire_dtype).tobytes()
        return bytes(out)


@dataclass
class Group:
    """A named collection of datasets and sub-groups."""

    name: str
    attrs: dict[str, AttrValue] = field(default_factory=dict)
    children: list["Group | Dataset"] = field(default_factory=list)

    def add(self, child: "Group | Dataset") -> "Group | Dataset":
        if any(c.name == child.name for c in self.children):
            raise Hdf5LiteError(f"duplicate child name {child.name!r}")
        self.children.append(child)
        return child

    def child(self, name: str) -> "Group | Dataset":
        for candidate in self.children:
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.name!r} has no child {name!r}")

    def dataset(self, path: str) -> Dataset:
        """Look up a dataset by ``a/b/c`` path."""
        node: Group | Dataset = self
        for part in path.split("/"):
            if not isinstance(node, Group):
                raise KeyError(f"{part!r}: not a group")
            node = node.child(part)
        if not isinstance(node, Dataset):
            raise KeyError(f"{path!r} is a group, not a dataset")
        return node

    def encode(self) -> bytes:
        out = bytearray(b"\x01")
        out += _pack_str(self.name)
        out += _pack_attrs(self.attrs)
        out += struct.pack(">H", len(self.children))
        for item in self.children:
            out += item.encode()
        return bytes(out)


def dump(root: Group) -> bytes:
    """Serialize a tree to container bytes."""
    return MAGIC + root.encode()


def load(data: bytes) -> Group:
    """Parse container bytes back into a tree."""
    if not data.startswith(MAGIC):
        raise Hdf5LiteError("bad magic")
    node, offset = _parse_node(data, len(MAGIC))
    if offset != len(data):
        raise Hdf5LiteError(f"{len(data) - offset} trailing bytes")
    if not isinstance(node, Group):
        raise Hdf5LiteError("root must be a group")
    return node


def _parse_node(data: bytes, offset: int) -> tuple[Group | Dataset, int]:
    if offset >= len(data):
        raise Hdf5LiteError("truncated node")
    tag = data[offset]
    offset += 1
    name, offset = _unpack_str(data, offset)
    if tag == 0x01:
        attrs, offset = _unpack_attrs(data, offset)
        (count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        group = Group(name=name, attrs=attrs)
        for _ in range(count):
            child, offset = _parse_node(data, offset)
            group.children.append(child)
        return group, offset
    if tag == 0x02:
        code, ndim = struct.unpack_from(">BB", data, offset)
        offset += 2
        if code not in _DTYPES:
            raise Hdf5LiteError(f"unknown dtype code {code}")
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from(">I", data, offset)
            offset += 4
            shape.append(dim)
        attrs, offset = _unpack_attrs(data, offset)
        dtype = np.dtype(_DTYPES[code])
        nbytes = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if offset + nbytes > len(data):
            raise Hdf5LiteError("truncated dataset body")
        array = np.frombuffer(data[offset : offset + nbytes], dtype=dtype).reshape(shape)
        offset += nbytes
        return Dataset(name=name, data=array, attrs=attrs), offset
    raise Hdf5LiteError(f"unknown node tag {tag}")
