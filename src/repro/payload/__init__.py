"""In-path payload processing (§6, challenge 2): HDF5-lite transcoding
and trigger-primitive extraction on DPDK/FPGA-class resources."""

from .hdf5lite import Dataset, Group, Hdf5LiteError, dump, load
from .processors import (
    InlineProcessorNode,
    PayloadProcessor,
    TriggerPrimitive,
    TriggerPrimitiveExtractor,
    WibToHdf5Transcoder,
    parse_primitives,
)

__all__ = [
    "Dataset",
    "Group",
    "Hdf5LiteError",
    "InlineProcessorNode",
    "PayloadProcessor",
    "TriggerPrimitive",
    "TriggerPrimitiveExtractor",
    "WibToHdf5Transcoder",
    "dump",
    "load",
    "parse_primitives",
]
