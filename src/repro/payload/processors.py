"""In-path payload processors (§6, challenge 2).

These model the *DPDK/FPGA class* of in-network resources — explicitly
beyond what P4 header pipelines can do (and therefore kept apart from
:mod:`repro.dataplane`, whose constraint model forbids payload access):

- :class:`WibToHdf5Transcoder` — raw WIB-framed DAQ messages →
  HDF5-lite containers, ready for the storage tier;
- :class:`TriggerPrimitiveExtractor` — raw waveforms → compact trigger
  primitives (channel, amplitude, time), the input to multi-domain
  alert generation;
- :class:`InlineProcessorNode` — a bump-in-the-wire node that applies
  a processor to MMT DATA payloads at a modelled per-byte cost, leaving
  headers (and therefore the transport's multi-modal machinery) intact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.features import MsgType
from ..core.header import MmtHeader
from ..netsim.engine import Simulator
from ..netsim.headers import EthernetHeader, Ipv4Header
from ..netsim.link import Port
from ..netsim.node import Node
from ..netsim.packet import Packet
from ..netsim.switch import RoutingTable
from ..daq.formats import PayloadKind, WibFrame, parse_message
from .hdf5lite import Dataset, Group, dump


class PayloadProcessor:
    """Interface: transform one DAQ message payload (or drop it)."""

    name = "processor"

    def process(self, payload: bytes) -> bytes | None:
        raise NotImplementedError


class WibToHdf5Transcoder(PayloadProcessor):
    """Raw WIB message → HDF5-lite container.

    The container mirrors the layout HEP offline software expects:
    ``/<detector>/slice<k>/frame<ts>`` with the ADC block as a typed
    dataset and the acquisition metadata as attributes.
    """

    name = "wib-to-hdf5"

    def __init__(self) -> None:
        self.transcoded = 0
        self.skipped = 0

    def process(self, payload: bytes) -> bytes | None:
        try:
            header, body = parse_message(payload)
        except Exception:
            self.skipped += 1
            return payload  # not a DAQ message; pass through untouched
        if header.payload_kind != PayloadKind.WIB_FRAME:
            self.skipped += 1
            return payload
        frame = WibFrame.decode(body)
        root = Group(name=f"detector{header.detector_id}")
        slice_group = root.add(Group(name=f"slice{header.slice_id}"))
        frame_group = slice_group.add(Group(
            name=f"frame{header.timestamp_ticks}",
            attrs={
                "run": header.run_number,
                "timestamp_ticks": header.timestamp_ticks,
                "crate": frame.crate,
                "slot": frame.slot,
                "fiber": frame.fiber,
            },
        ))
        frame_group.add(Dataset(
            name="adc",
            data=np.asarray(frame.adc_counts, dtype=np.uint16),
            attrs={"units": "ADC counts"},
        ))
        self.transcoded += 1
        return dump(root)


@dataclass(frozen=True)
class TriggerPrimitive:
    """A hit summary: where, when, how big (what alert logic consumes)."""

    channel: int
    timestamp_ticks: int
    amplitude: int

    _FORMAT = ">HQI"
    SIZE = struct.calcsize(_FORMAT)

    def encode(self) -> bytes:
        return struct.pack(self._FORMAT, self.channel, self.timestamp_ticks, self.amplitude)

    @classmethod
    def decode(cls, data: bytes) -> "TriggerPrimitive":
        channel, ts, amplitude = struct.unpack(cls._FORMAT, data[: cls.SIZE])
        return cls(channel, ts, amplitude)


class TriggerPrimitiveExtractor(PayloadProcessor):
    """Raw waveform message → packed trigger primitives (or nothing).

    Channels whose ADC exceeds ``pedestal + threshold`` produce one
    primitive each; messages with no hits are suppressed entirely —
    the data reduction that makes in-network alert generation viable.
    """

    name = "trigger-primitives"

    def __init__(self, pedestal: int = 2300, threshold: int = 150) -> None:
        self.pedestal = pedestal
        self.threshold = threshold
        self.primitives_emitted = 0
        self.messages_suppressed = 0

    def process(self, payload: bytes) -> bytes | None:
        try:
            header, body = parse_message(payload)
        except Exception:
            return payload
        if header.payload_kind != PayloadKind.WIB_FRAME:
            return payload
        frame = WibFrame.decode(body)
        hits = [
            TriggerPrimitive(channel, frame.timestamp_ticks, count - self.pedestal)
            for channel, count in enumerate(frame.adc_counts)
            if count > self.pedestal + self.threshold
        ]
        if not hits:
            self.messages_suppressed += 1
            return None
        self.primitives_emitted += len(hits)
        out = struct.pack(">H", len(hits))
        for hit in hits:
            out += hit.encode()
        return out


def parse_primitives(data: bytes) -> list[TriggerPrimitive]:
    """Decode a packed trigger-primitive message."""
    (count,) = struct.unpack_from(">H", data, 0)
    offset = 2
    hits = []
    for _ in range(count):
        hits.append(TriggerPrimitive.decode(data[offset : offset + TriggerPrimitive.SIZE]))
        offset += TriggerPrimitive.SIZE
    return hits


class InlineProcessorNode(Node):
    """A DPDK/FPGA bump-in-the-wire applying a processor to DATA payloads.

    Forwarding is IP-routed (routes installed by the topology builder).
    Processing costs ``per_byte_ns`` × payload size of added latency.
    Control messages and non-MMT traffic pass through untouched, so the
    transport machinery (NAKs, heartbeats, deadline reports) is never
    disturbed. Note: a *transformed* payload changes size; sequenced
    streams stay recoverable because the processor sits after/before
    buffers, never between a buffer and its NAK path.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        processor: PayloadProcessor,
        per_byte_ns: float = 0.05,  # ~20 GB/s of processing bandwidth
    ) -> None:
        super().__init__(sim, name)
        self.mac = mac
        self.routes = RoutingTable()
        self.processor = processor
        self.per_byte_ns = per_byte_ns
        self.processed = 0
        self.suppressed = 0
        self.passthrough = 0
        self.dropped_no_route = 0

    def add_route(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        if port_name not in self.ports:
            raise ValueError(f"{self.name} has no port {port_name!r}")
        self.routes.add(prefix, port_name, next_hop_mac)

    def receive(self, packet: Packet, port: Port) -> None:
        mmt = packet.find(MmtHeader)
        if mmt is None or mmt.msg_type != MsgType.DATA or packet.payload is None:
            self.passthrough += 1
            self._forward(packet)
            return
        transformed = self.processor.process(packet.payload)
        if transformed is None:
            self.suppressed += 1
            return
        delay = int(self.per_byte_ns * packet.payload_size)
        self.processed += 1
        packet.payload = transformed
        packet.payload_size = len(transformed)
        self.sim.schedule(delay, self._forward, packet)

    def _forward(self, packet: Packet) -> None:
        ip = packet.find(Ipv4Header)
        if ip is None:
            self.dropped_no_route += 1
            return
        route = self.routes.lookup(ip.dst)
        if route is None or ip.ttl <= 1:
            self.dropped_no_route += 1
            return
        ip.ttl -= 1
        eth = packet.find(EthernetHeader)
        if eth is not None:
            eth.src = self.mac
            eth.dst = route.next_hop_mac
        self.ports[route.port_name].send(packet)
