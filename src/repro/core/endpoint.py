"""MMT endpoints: sender, receiver, and the per-host protocol stack.

An :class:`MmtStack` registers with a host for MMT-over-IP and
MMT-over-Ethernet (Req 1) and demultiplexes by message type and
experiment id. Applications use:

- :class:`MmtSender` — datagram sends (one message per packet; DAQ
  messages have well-defined boundaries and are MTU-fitted, §2.1),
  optional pacing, optional local retransmission buffering, heartbeats
  so receivers can detect tail loss, and backpressure response.
- :class:`MmtReceiver` — immediate (non-blocking, unordered) delivery
  of messages to the application — the message abstraction of Req 7;
  gap detection over sequence numbers with NAKs sent to the *nearest
  buffer* named in the header (not the source); deadline checking with
  miss notifications; age/aged accounting.

Design note: messages are delivered the moment they arrive. Unlike a
TCP bytestream there is no head-of-line blocking — a recovered packet
fills in later, and the application sees exactly which timestamps are
still outstanding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..netsim.engine import Timer
from ..netsim.headers import ECN_CE, ECN_ECT0, EtherType, IpProto
from ..netsim.host import Host
from ..netsim.packet import Packet
from ..netsim.units import MBPS, MICROSECOND, MILLISECOND, SECOND
from .control import (
    BackpressurePayload,
    DeadlineMissPayload,
    HeartbeatPayload,
    ModeAnnouncePayload,
    NakPayload,
    WindowUpdatePayload,
)
from .features import Feature, MsgType
from .header import MmtHeader
from .modes import Mode, ModeRegistry, pilot_registry
from .retransmit import BufferDirectory, NakForwardGuard, RetransmitBuffer
from .seqspace import unwrap, wrap


class EndpointError(RuntimeError):
    """Raised for endpoint misuse."""


# ---------------------------------------------------------------------------
# Stack
# ---------------------------------------------------------------------------


class MmtStack:
    """Per-host MMT protocol instance: demux, buffers, notifications."""

    def __init__(self, host: Host, registry: ModeRegistry | None = None) -> None:
        self.host = host
        self.sim = host.sim
        self.registry = registry or pilot_registry()
        self.receivers: dict[int, MmtReceiver] = {}
        self.senders: list[MmtSender] = []
        self.buffer: RetransmitBuffer | None = None
        #: NAKs this buffer could not serve are forwarded here (chained
        #: buffers; the final fallback is the source).
        self.nak_fallback_addr: str | None = None
        self.deadline_misses: list[DeadlineMissPayload] = []
        self.on_deadline_miss: Callable[[DeadlineMissPayload], None] | None = None
        #: experiment_id → mode announcements received from on-path
        #: elements (§4.2's end-to-end-from-hop-by-hop reasoning input).
        self.mode_announcements: dict[int, list[ModeAnnouncePayload]] = {}
        self.on_mode_announce: Callable[[int, ModeAnnouncePayload], None] | None = None
        self.rx_unknown_experiment = 0
        #: In-band telemetry sink (repro.telemetry.inband.IntSink);
        #: when set, INT stacks are stripped off every arriving packet
        #: and fed to the sink's registry before demux.
        self.int_sink = None
        #: Identical unmet-NAK forwards are capped so a mis-wired
        #: fallback cycle dies out instead of circulating forever.
        self._nak_forward_guard = NakForwardGuard()
        #: Causal tracer (repro.trace.Tracer) or None; senders and
        #: receivers of this stack reach it via ``self.stack.tracer``.
        self.tracer = None
        host.register_l3_protocol(IpProto.MMT, self._receive)
        host.register_l2_protocol(EtherType.MMT, self._receive)

    # -- construction helpers ------------------------------------------------

    def attach_buffer(self, capacity_bytes: int) -> RetransmitBuffer:
        """Host a retransmission buffer at this node (DTN or smartNIC)."""
        if self.buffer is not None:
            raise EndpointError(f"{self.host.name} already hosts a buffer")
        self.buffer = RetransmitBuffer(capacity_bytes, address=self.host.ip)
        return self.buffer

    def create_sender(self, **kwargs) -> "MmtSender":
        sender = MmtSender(stack=self, **kwargs)
        self.senders.append(sender)
        return sender

    def bind_receiver(self, experiment: int, **kwargs) -> "MmtReceiver":
        """Bind a receiver for an experiment number (all slices)."""
        if experiment in self.receivers:
            raise EndpointError(f"experiment {experiment} already bound")
        receiver = MmtReceiver(stack=self, experiment=experiment, **kwargs)
        self.receivers[experiment] = receiver
        return receiver

    @property
    def nak_forwards_suppressed(self) -> int:
        """Unmet-NAK forwards dropped by the anti-loop guard."""
        return self._nak_forward_guard.suppressed

    # -- wire I/O ---------------------------------------------------------------

    def send_control(
        self,
        dst_ip: str,
        header: MmtHeader,
        payload: bytes,
        src_ip: str | None = None,
    ) -> bool:
        """Transmit a control message (NAK, miss report, backpressure).

        ``src_ip`` preserves an original requester when relaying (so
        the eventual answer bypasses this relay)."""
        return self.host.send_ip(
            dst_ip,
            IpProto.MMT,
            [header],
            payload=payload,
            meta={"mmt_control": header.msg_type.name},
            src_ip=src_ip,
        )

    def _receive(self, packet: Packet) -> None:
        if self.int_sink is not None:
            self.int_sink.absorb(packet)
        header = packet.find(MmtHeader)
        if header is None:
            return
        if header.msg_type in (MsgType.DATA, MsgType.RETX_DATA, MsgType.HEARTBEAT):
            receiver = self.receivers.get(header.experiment)
            if receiver is None:
                self.rx_unknown_experiment += 1
                return
            receiver.handle(packet, header)
        elif header.msg_type == MsgType.NAK:
            self._handle_nak(packet, header)
        elif header.msg_type == MsgType.DEADLINE_MISS:
            self._handle_deadline_miss(packet)
        elif header.msg_type == MsgType.BACKPRESSURE:
            self._handle_backpressure(packet, header)
        elif header.msg_type == MsgType.WINDOW:
            self._handle_window(packet, header)
        elif header.msg_type == MsgType.MODE_ANNOUNCE:
            self._handle_mode_announce(packet, header)

    # -- control handling ----------------------------------------------------

    def _handle_nak(self, packet: Packet, header: MmtHeader) -> None:
        if self.buffer is None or packet.payload is None:
            return
        from ..netsim.headers import Ipv4Header

        ip = packet.find(Ipv4Header)
        requester = ip.src if ip is not None else None
        if requester is None:
            return
        nak = NakPayload.decode(packet.payload)
        flow_id = header.flow_id or 0
        recovered, unmet = self.buffer.serve_nak(header.experiment_id, nak, flow_id)
        for cached in recovered:
            self._resend(cached, requester)
        if unmet and self.nak_fallback_addr:
            key = (
                header.experiment_id,
                flow_id,
                tuple((r.start, r.end) for r in unmet),
            )
            if not self._nak_forward_guard.allow(key):
                return
            if self.tracer is not None:
                for unmet_range in unmet:
                    for seq in unmet_range:
                        self.tracer.emit(
                            "nak.forward", self.host.name,
                            header.experiment_id, flow_id, seq,
                            target=self.nak_fallback_addr,
                        )
            fallback = NakPayload(ranges=list(unmet))
            fwd_header = MmtHeader(
                config_id=header.config_id,
                features=Feature.FLOW_ID if flow_id else Feature.NONE,
                msg_type=MsgType.NAK,
                experiment_id=header.experiment_id,
                flow_id=flow_id if flow_id else None,
            )
            self.send_control(
                self.nak_fallback_addr, fwd_header, fallback.encode(),
                src_ip=requester,  # answers go straight to the requester
            )

    def _resend(self, cached: Packet, requester: str) -> None:
        """Re-originate a cached packet toward the NAK requester."""
        mmt = cached.find(MmtHeader)
        if mmt is None:
            return
        mmt = mmt.copy()
        mmt.msg_type = MsgType.RETX_DATA
        if self.tracer is not None:
            self.tracer.emit(
                "retx.send", self.host.name,
                mmt.experiment_id, mmt.flow_id or 0, mmt.seq,
                target=requester,
            )
        # Keep the cached packet's meta (original sent_at, age epoch) so
        # latency/age accounting spans the message's whole lifetime.
        meta = dict(cached.meta)
        meta["retx"] = True
        meta.setdefault("flow", "retx")
        self.host.send_ip(
            requester,
            IpProto.MMT,
            [mmt],
            payload_size=cached.payload_size,
            payload=cached.payload,
            meta=meta,
        )

    def _handle_deadline_miss(self, packet: Packet) -> None:
        if packet.payload is None:
            return
        miss = DeadlineMissPayload.decode(packet.payload)
        self.deadline_misses.append(miss)
        if self.on_deadline_miss is not None:
            self.on_deadline_miss(miss)

    def _handle_backpressure(self, packet: Packet, header: MmtHeader) -> None:
        if packet.payload is None:
            return
        signal = BackpressurePayload.decode(packet.payload)
        for sender in self.senders:
            if sender.experiment_id == header.experiment_id:
                sender.apply_backpressure(signal)

    def _handle_window(self, packet: Packet, header: MmtHeader) -> None:
        if packet.payload is None:
            return
        update = WindowUpdatePayload.decode(packet.payload)
        for sender in self.senders:
            if sender.experiment_id == header.experiment_id:
                sender.stats.window_updates_received += 1
                sender.add_credits(update.credits)

    def _handle_mode_announce(self, packet: Packet, header: MmtHeader) -> None:
        if packet.payload is None:
            return
        announce = ModeAnnouncePayload.decode(packet.payload)
        history = self.mode_announcements.setdefault(header.experiment_id, [])
        history.append(announce)
        if self.on_mode_announce is not None:
            self.on_mode_announce(header.experiment_id, announce)


# ---------------------------------------------------------------------------
# Sender
# ---------------------------------------------------------------------------


@dataclass
class SenderConfig:
    """Tunables for an :class:`MmtSender`."""

    #: Interval between heartbeats while the stream is active; 0 disables.
    heartbeat_interval_ns: int = MILLISECOND
    #: Heartbeats sent after finish() so tail loss is always detectable.
    closing_heartbeats: int = 3
    #: Stop heartbeating after this many beats with no new data (the
    #: stream is idle; beating resumes on the next send). Keeps idle
    #: senders from holding the event loop open forever.
    idle_heartbeat_limit: int = 5
    #: Floor for backpressure-driven rate reduction.
    min_pace_rate_mbps: int = 100
    #: Multiplicative recovery applied each heartbeat after backpressure.
    pace_recovery_factor: float = 1.05
    #: Minimum spacing between effective backpressure reductions. A
    #: standing queue above an ECN mark point echoes continuously; the
    #: hold-off makes the reaction once-per-window (AIMD) instead of an
    #: exponential decay to the floor. 0 = legacy immediate reaction.
    backpressure_holdoff_ns: int = 0
    #: Starting credit balance for FLOW_CONTROL modes (messages the
    #: sender may emit before the first receiver grant arrives).
    initial_credits: int = 64
    #: After a degradation, how long to wait before the first re-check
    #: for a live buffer (doubles each failed attempt — the sender-side
    #: retransmit-timeout analogue of the receiver's NAK backoff).
    buffer_recheck_ns: int = 2 * MILLISECOND
    #: Multiplier applied to the re-check interval per failed attempt.
    buffer_recheck_backoff: float = 2.0
    #: Bounded give-up mirroring the receiver's ``max_naks``: stop
    #: probing for a live buffer after this many failed re-checks and
    #: stay degraded permanently.
    max_buffer_rechecks: int = 8


@dataclass
class SenderStats:
    """Per-sender counters."""
    messages_sent: int = 0
    bytes_sent: int = 0
    heartbeats_sent: int = 0
    backpressure_signals: int = 0
    send_failures: int = 0
    #: High-water mark of messages held back awaiting credits.
    flow_blocked: int = 0
    window_updates_received: int = 0
    #: Mode degradations (no live buffer → identification-only) and the
    #: recoveries back once a buffer reappeared.
    mode_degradations: int = 0
    mode_upgrades: int = 0
    #: Buffer liveness re-checks that found nothing (backoff retries).
    buffer_rechecks_failed: int = 0
    #: 1 once the sender exhausted its re-checks and stays degraded.
    degraded_final: int = 0
    #: Mid-flow primary-mode rewrites (:meth:`MmtSender.set_mode`).
    mode_rewrites: int = 0


class MmtSender:
    """Message-oriented sender; one message = one MMT packet."""

    def __init__(
        self,
        stack: MmtStack,
        experiment_id: int,
        mode: Mode | str,
        dst_ip: str | None = None,
        dst_mac: str | None = None,
        l2_port: str | None = None,
        pace_rate_mbps: int | None = None,
        deadline_offset_ns: int | None = None,
        notify_addr: str | None = None,
        age_budget_ns: int | None = None,
        buffer_local: bool = False,
        config: SenderConfig | None = None,
        flow: str | None = None,
        directory: BufferDirectory | None = None,
        path_position: int = 0,
        degraded_mode: Mode | str = "identify",
        flow_id: int | None = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.experiment_id = experiment_id
        self.mode = stack.registry.by_name(mode) if isinstance(mode, str) else mode
        if dst_ip is None and (dst_mac is None or l2_port is None):
            raise EndpointError("need dst_ip, or dst_mac with l2_port")
        self.dst_ip = dst_ip
        self.dst_mac = dst_mac
        self.l2_port = l2_port
        self.pace_rate_mbps = pace_rate_mbps
        self.deadline_offset_ns = deadline_offset_ns
        self.notify_addr = notify_addr
        self.age_budget_ns = age_budget_ns
        self.buffer_local = buffer_local
        self.config = config or SenderConfig()
        #: Wire flow identifier (FLOW_ID extension); None = legacy
        #: single-flow traffic whose headers stay byte-identical.
        self.flow_id = flow_id
        if flow is None:
            flow = (
                f"mmt-{experiment_id}-f{flow_id}"
                if flow_id is not None
                else f"mmt-{experiment_id}"
            )
        self.flow = flow
        self.stats = SenderStats()
        self._next_seq = 0
        self._pending: deque[tuple[int, bytes | None, dict]] = deque()
        self._pace_timer = Timer(self.sim, self._drain_paced)
        self._heartbeat_timer = Timer(self.sim, self._heartbeat)
        #: Buffer directory consulted before each reliable send; when no
        #: live buffer serves the experiment the sender degrades to
        #: ``degraded_mode`` (the paper's multi-modality used
        #: defensively) instead of advertising a dead NAK target.
        self.directory = directory
        self.path_position = path_position
        self._primary_mode = self.mode
        self._degraded_mode = (
            stack.registry.by_name(degraded_mode)
            if isinstance(degraded_mode, str)
            else degraded_mode
        ) if directory is not None else None
        self._degraded = False
        self._rechecks_done = 0
        self._recheck_timer = Timer(self.sim, self._recheck_buffer)
        self._finished = False
        self._closing_left = self.config.closing_heartbeats
        self._beats_since_send = 0
        #: Time of the last *effective* backpressure reduction.
        self._last_backpressure_at: int | None = None
        #: Credit balance for FLOW_CONTROL modes (None = not used).
        self._credits: int | None = (
            self.config.initial_credits if self.mode.has(Feature.FLOW_CONTROL) else None
        )
        if self.mode.has(Feature.PACING) and self.pace_rate_mbps is None:
            raise EndpointError("PACING mode requires pace_rate_mbps")
        if self.mode.has(Feature.TIMELINESS) and (
            self.deadline_offset_ns is None or self.notify_addr is None
        ):
            raise EndpointError("TIMELINESS mode requires deadline_offset_ns+notify_addr")
        if self.mode.has(Feature.AGE_TRACKING) and self.age_budget_ns is None:
            raise EndpointError("AGE_TRACKING mode requires age_budget_ns")
        if buffer_local and stack.buffer is None:
            raise EndpointError("buffer_local requires stack.attach_buffer() first")

    # -- public API ---------------------------------------------------------------

    def send(
        self,
        payload_size: int,
        payload: bytes | None = None,
        meta: dict | None = None,
    ) -> None:
        """Queue one message. Paced modes space transmissions; others
        hand the packet straight to the NIC."""
        if self._finished:
            raise EndpointError("sender is finished")
        if (
            self.config.heartbeat_interval_ns
            and self.mode.has(Feature.SEQUENCED)
            and not self._heartbeat_timer.running
        ):
            self._heartbeat_timer.start(self.config.heartbeat_interval_ns)
        self._beats_since_send = 0
        entry = (payload_size, payload, dict(meta or {}))
        if self.mode.has(Feature.PACING) or self._credits is not None:
            self._pending.append(entry)
            self._pump()
        else:
            self._transmit(*entry)

    def _pump(self) -> None:
        """Push queued messages through the pacing/credit gates."""
        if self.mode.has(Feature.PACING):
            if not self._pace_timer.running:
                self._drain_paced()
            return
        while self._pending and self._credits > 0:
            self._credits -= 1
            payload_size, payload, meta = self._pending.popleft()
            self._transmit(payload_size, payload, meta)
        if self._pending:
            self.stats.flow_blocked = max(
                self.stats.flow_blocked, len(self._pending)
            )

    def add_credits(self, credits: int) -> None:
        """Receiver grant arrived (WINDOW update): release sends."""
        if self._credits is None:
            return
        self._credits += credits
        self._pump()

    @property
    def credits(self) -> int | None:
        """Remaining flow-control credits (None when not flow-controlled)."""
        return self._credits

    def finish(self) -> None:
        """Declare the stream complete; closing heartbeats still flush."""
        self._finished = True

    @property
    def next_seq(self) -> int:
        """The sequence number the next message will carry."""
        return self._next_seq

    def set_mode(self, mode: Mode | str) -> None:
        """Shape-shift the stream's *primary* mode mid-flow.

        The rewrite is seamless for per-flow state: sequence numbering
        (``next_seq``), the local retransmit cache, credits, and pacing
        all carry over, so packets already in flight stay recoverable
        and new packets continue the same sequence space.

        A currently *degraded* sender keeps transmitting in its degraded
        mode; the rewrite retargets what :meth:`_upgrade` will restore
        once a live buffer returns — shape-shifting and churn compose.
        Feature requirements are validated exactly as at construction
        (and before any state changes, so a bad rewrite is a no-op).
        """
        mode = self.stack.registry.by_name(mode) if isinstance(mode, str) else mode
        if mode.has(Feature.PACING) and self.pace_rate_mbps is None:
            raise EndpointError("PACING mode requires pace_rate_mbps")
        if mode.has(Feature.TIMELINESS) and (
            self.deadline_offset_ns is None or self.notify_addr is None
        ):
            raise EndpointError("TIMELINESS mode requires deadline_offset_ns+notify_addr")
        if mode.has(Feature.AGE_TRACKING) and self.age_budget_ns is None:
            raise EndpointError("AGE_TRACKING mode requires age_budget_ns")
        if self.buffer_local and self.stack.buffer is None:
            raise EndpointError("buffer_local requires stack.attach_buffer() first")
        previous = self._primary_mode
        self._primary_mode = mode
        self.stats.mode_rewrites += 1
        if self.stack.tracer is not None:
            self.stack.tracer.emit(
                "mode.rewrite", self.stack.host.name,
                self.experiment_id, self.flow_id or 0,
                from_config=previous.config_id, to_config=mode.config_id,
            )
        if self._degraded:
            return  # the new primary takes effect at the next upgrade
        self.mode = mode
        if mode.has(Feature.FLOW_CONTROL) and self._credits is None:
            self._credits = self.config.initial_credits
        if not mode.has(Feature.SEQUENCED):
            self._heartbeat_timer.stop()
        if mode is not previous:
            self._announce_mode()

    def apply_backpressure(self, signal: BackpressurePayload) -> None:
        """React to a backpressure signal by reducing the pacing rate."""
        self.stats.backpressure_signals += 1
        if not self.mode.has(Feature.BACKPRESSURE):
            return
        if self.pace_rate_mbps is None:
            return
        holdoff = self.config.backpressure_holdoff_ns
        if (
            holdoff
            and self._last_backpressure_at is not None
            and self.sim.now - self._last_backpressure_at < holdoff
        ):
            return  # already reduced for this window of in-flight data
        advised = max(signal.advised_rate_mbps, self.config.min_pace_rate_mbps)
        if advised < self.pace_rate_mbps:
            self.pace_rate_mbps = advised
            self._last_backpressure_at = self.sim.now

    # -- internals -------------------------------------------------------------------

    def _build_header(self, msg_type: MsgType = MsgType.DATA) -> MmtHeader:
        features = self.mode.features
        if self.flow_id is not None:
            features |= Feature.FLOW_ID
        header = MmtHeader(
            config_id=self.mode.config_id,
            features=features,
            msg_type=msg_type,
            ack_scheme=self.mode.ack_scheme,
            experiment_id=self.experiment_id,
            flow_id=self.flow_id,
        )
        if self.mode.has(Feature.SEQUENCED):
            header.seq = wrap(self._next_seq)  # 32-bit wire value
        if self.mode.has(Feature.RETRANSMISSION):
            addr = self.stack.host.ip if self.buffer_local else "0.0.0.0"
            if self.directory is not None:
                live = self.directory.failover_for(
                    self.experiment_id, self.path_position
                )
                if live is not None:
                    addr = live.address
            header.buffer_addr = addr
        if self.mode.has(Feature.TIMELINESS):
            header.deadline_ns = self.sim.now + self.deadline_offset_ns
            header.notify_addr = self.notify_addr
        if self.mode.has(Feature.AGE_TRACKING):
            header.age_ns = 0
            header.age_budget_ns = self.age_budget_ns
        if self.mode.has(Feature.PACING):
            header.pace_rate_mbps = self.pace_rate_mbps
        if self.mode.has(Feature.BACKPRESSURE):
            header.source_addr = self.stack.host.ip
        if self.mode.has(Feature.DUPLICATION):
            header.dup_group = self.experiment_id & 0xFFFF
            header.dup_copies = 1
        return header

    def _transmit(self, payload_size: int, payload: bytes | None, meta: dict) -> None:
        if (
            self.directory is not None
            and not self._degraded
            and self.mode.has(Feature.RETRANSMISSION)
            and self.directory.failover_for(self.experiment_id, self.path_position)
            is None
        ):
            self._degrade()
        header = self._build_header()
        meta = dict(meta)
        meta.setdefault("flow", self.flow)
        # Stamp origination time here (not only at the host) so locally
        # cached copies carry it into any later retransmission.
        meta.setdefault("sent_at", self.sim.now)
        if self.mode.has(Feature.AGE_TRACKING):
            meta["mmt_age_epoch"] = self.sim.now
        tracer = self.stack.tracer
        if tracer is not None:
            # Identity-less for unsequenced (identify-mode) streams: the
            # seq is only assigned once an in-network transition fires.
            tracer.emit(
                "packet.send", self.stack.host.name,
                self.experiment_id, self.flow_id or 0, header.seq,
                msg=header.msg_type.name, config=header.config_id,
            )
        sent = self._send_packet(header, payload_size, payload, meta)
        if not sent:
            self.stats.send_failures += 1
        if self.mode.has(Feature.SEQUENCED):
            if self.buffer_local and self.stack.buffer is not None:
                # Cache what we just sent so NAKs can be served locally.
                cached = Packet(
                    headers=[header.copy()],
                    payload_size=payload_size,
                    payload=payload,
                    meta=dict(meta),
                )
                self.stack.buffer.store(
                    self.experiment_id, header.seq, cached, self.flow_id or 0
                )
            self._next_seq += 1
        self.stats.messages_sent += 1
        self.stats.bytes_sent += payload_size

    def _send_packet(
        self,
        header: MmtHeader,
        payload_size: int,
        payload: bytes | None,
        meta: dict,
    ) -> bool:
        if self.dst_ip is not None:
            return self.stack.host.send_ip(
                self.dst_ip,
                IpProto.MMT,
                [header],
                payload_size=payload_size,
                payload=payload,
                meta=meta,
                # CONGESTION_CONTROL modes are ECN-capable: AQMs mark
                # their packets CE instead of dropping them.
                ecn=ECN_ECT0 if self.mode.has(Feature.CONGESTION_CONTROL) else 0,
            )
        return self.stack.host.send_l2(
            self.l2_port,
            self.dst_mac,
            EtherType.MMT,
            [header],
            payload_size=payload_size,
            payload=payload,
            meta=meta,
        )

    def _drain_paced(self) -> None:
        if not self._pending:
            return
        if self._credits is not None:
            if self._credits <= 0:
                return  # a credit grant will pump again
            self._credits -= 1
        payload_size, payload, meta = self._pending.popleft()
        self._transmit(payload_size, payload, meta)
        # Keep the timer armed even when the queue just drained: it
        # gates the *next* send to the pacing gap.
        rate_bps = max(self.pace_rate_mbps, 1) * MBPS
        gap_ns = (payload_size * 8 * SECOND) // rate_bps
        self._pace_timer.start(max(gap_ns, 1))

    def _heartbeat(self) -> None:
        if self._finished and self._closing_left <= 0:
            return
        if self._finished:
            self._closing_left -= 1
        elif self._beats_since_send >= self.config.idle_heartbeat_limit:
            return  # idle stream; beating resumes on the next send
        self._beats_since_send += 1
        if self.mode.has(Feature.SEQUENCED) and self._next_seq > 0:
            payload = HeartbeatPayload(
                highest_seq=wrap(self._next_seq - 1),
                packets_sent=self.stats.messages_sent,
            ).encode()
            header = self._build_header(MsgType.HEARTBEAT)
            # Heartbeats reuse the next seq slot without consuming it.
            self._send_packet(
                header, len(payload), payload, {"flow": f"{self.flow}:hb"}
            )
            self.stats.heartbeats_sent += 1
        if self.config.heartbeat_interval_ns:
            self._heartbeat_timer.start(self.config.heartbeat_interval_ns)

    # -- graceful mode degradation ------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the sender runs in its degraded (fallback) mode."""
        return self._degraded

    def _degrade(self) -> None:
        """No live buffer serves the experiment: fall back to the
        degraded mode (identification-only by default) and announce it.

        The paper's multi-modality used defensively: rather than keep
        advertising a dead NAK target (an unbounded NAK storm at the
        receiver), the stream sheds its reliability features until a
        buffer comes back. Re-checks run on an exponential backoff with
        a bounded give-up mirroring the receiver's ``max_naks``.
        """
        self.stats.mode_degradations += 1
        self.mode = self._degraded_mode
        self._degraded = True
        self._rechecks_done = 0
        if self.stack.tracer is not None:
            self.stack.tracer.emit(
                "mode.degrade", self.stack.host.name,
                self.experiment_id, self.flow_id or 0,
                to_config=self.mode.config_id,
            )
        if not self.mode.has(Feature.SEQUENCED):
            self._heartbeat_timer.stop()
        self._announce_mode()
        self._recheck_timer.start(self.config.buffer_recheck_ns)

    def _upgrade(self) -> None:
        """A live buffer reappeared: restore the primary mode."""
        self.mode = self._primary_mode
        self._degraded = False
        self._rechecks_done = 0
        self.stats.mode_upgrades += 1
        if self.stack.tracer is not None:
            self.stack.tracer.emit(
                "mode.upgrade", self.stack.host.name,
                self.experiment_id, self.flow_id or 0,
                to_config=self.mode.config_id,
            )
        self._announce_mode()

    def _recheck_buffer(self) -> None:
        if not self._degraded or self._finished:
            return
        if (
            self.directory.failover_for(self.experiment_id, self.path_position)
            is not None
        ):
            self._upgrade()
            return
        self.stats.buffer_rechecks_failed += 1
        self._rechecks_done += 1
        if self._rechecks_done >= self.config.max_buffer_rechecks:
            self.stats.degraded_final = 1
            return  # bounded give-up: stay degraded, leak no timer
        delay = int(
            self.config.buffer_recheck_ns
            * self.config.buffer_recheck_backoff ** self._rechecks_done
        )
        self._recheck_timer.start(max(delay, 1))

    def _announce_mode(self) -> None:
        """Tell the destination which mode the stream now runs in."""
        if self.dst_ip is None:
            return  # raw-L2 senders have no control channel
        payload = ModeAnnouncePayload(
            config_id=self.mode.config_id,
            element=self.stack.host.ip,
            at_ns=self.sim.now,
        ).encode()
        header = MmtHeader(
            config_id=self.mode.config_id,
            features=Feature.NONE,
            msg_type=MsgType.MODE_ANNOUNCE,
            experiment_id=self.experiment_id,
        )
        self.stack.send_control(self.dst_ip, header, payload)

    def recover_pace(self) -> None:
        """Gently raise the pacing rate after backpressure (AIMD-style)."""
        if self.pace_rate_mbps is not None:
            self.pace_rate_mbps = int(
                self.pace_rate_mbps * self.config.pace_recovery_factor
            )


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------


@dataclass
class ReceiverConfig:
    """Tunables for an :class:`MmtReceiver`."""

    #: How long to wait for reordering before NAK-ing a gap.
    reorder_wait_ns: int = 50 * MICROSECOND
    #: Backoff multiplier between repeated NAKs for the same gap.
    nak_backoff: float = 2.0
    #: Give up on a sequence number after this many NAKs.
    max_naks: int = 8
    #: Assumed NAK→retransmission round trip before any measurement.
    initial_rtt_ns: int = 2 * MILLISECOND
    #: A retry is not sent before ``rtt_safety`` × estimated RTT passed.
    rtt_safety: float = 2.0
    #: Re-derive the retry RTO from the path's *current* one-way delay
    #: (tracked from every fresh delivery): the RTT basis is floored at
    #: two one-way trips, so a mid-flight delay ramp on a time-varying
    #: link raises the RTO with it instead of firing spurious NAK
    #: retries off a stale estimate. Disable to reproduce the frozen
    #: pre-trajectory behavior.
    adapt_rtt_to_path: bool = True
    #: Largest leading gap treated as recoverable loss when the first
    #: packet of a flow arrives with seq > 0. A bigger jump means the
    #: receiver joined mid-stream (or after a 32-bit wrap): history is
    #: not expected, and tracking starts at the observed position.
    max_leading_gap: int = 4096
    #: Treat sequence gaps as losses to recover. Disable for consumers
    #: that legitimately see a *stripe* of the sequence space (e.g.
    #: workers behind an EJ-FAT-style balancer) — they must not NAK the
    #: windows owned by their peers. Explicit ``request_missing`` still
    #: works.
    detect_gaps: bool = True
    #: FLOW_CONTROL: grant the sender this many fresh credits after
    #: every ``grant_credits`` deliveries (0 disables granting).
    grant_credits: int = 0
    #: Multiplicative-decrease factor echoed on a CE mark: the receiver
    #: advises ``pace_rate × ecn_beta`` via a BACKPRESSURE control.
    #: Repeat marks from the same pre-reduction window re-advise the
    #: same (already applied) rate, so the reduction is once per window.
    ecn_beta: float = 0.5


@dataclass
class ReceiverStats:
    """Per-receiver counters."""
    messages_delivered: int = 0
    bytes_delivered: int = 0
    duplicates: int = 0
    retransmissions_received: int = 0
    naks_sent: int = 0
    gaps_detected: int = 0
    unrecovered: int = 0
    deadline_misses: int = 0
    deadline_ok: int = 0
    aged_packets: int = 0
    heartbeats_received: int = 0
    windows_granted: int = 0
    #: CE-marked packets seen (ECN-capable MMT modes).
    ce_marks_seen: int = 0
    #: Backpressure controls echoed back in response to CE marks.
    ce_echoes_sent: int = 0


@dataclass
class _FlowState:
    """Per-``(experiment_id, flow_id)`` sequence tracking.

    Legacy traffic without the FLOW_ID extension lands on flow 0, so a
    single-flow receiver sees exactly one state per experiment as
    before. Per-flow delivery/NAK counters live here (not only in the
    aggregate :class:`ReceiverStats`) so fairness and fault-isolation
    checks can see each flow separately.
    """

    base: int = 0
    received: set[int] = field(default_factory=set)
    missing: dict[int, int] = field(default_factory=dict)  # seq -> nak count
    buffer_addr: str | None = None
    highest_seen: int = -1
    given_up: set[int] = field(default_factory=set)
    #: seq → time the first NAK covering it was sent (for RTT sampling).
    nak_sent_at: dict[int, int] = field(default_factory=dict)
    #: seq → time the most recent NAK covering it was sent (retry pacing).
    last_nak_at: dict[int, int] = field(default_factory=dict)
    #: EWMA of the NAK→retransmission round trip to the buffer.
    rtt_est_ns: int | None = None
    #: EWMA of the one-way source→receiver delay of *fresh* data, fed
    #: by every delivery. Weighted toward the newest sample (1/2) so a
    #: link-delay trajectory moves the estimate within a few packets.
    path_delay_ns: int | None = None
    #: Per-flow delivery / recovery counters.
    delivered: int = 0
    bytes_delivered: int = 0
    naks_sent: int = 0
    unrecovered: int = 0
    retransmissions: int = 0


class MmtReceiver:
    """Delivers messages to the application and drives loss recovery."""

    def __init__(
        self,
        stack: MmtStack,
        experiment: int,
        on_message: Callable[[Packet, MmtHeader], None] | None = None,
        config: ReceiverConfig | None = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.experiment = experiment
        self.on_message = on_message
        self.config = config or ReceiverConfig()
        self.stats = ReceiverStats()
        #: (experiment_id, flow_id) → per-flow tracking state.
        self._flows: dict[tuple[int, int], _FlowState] = {}
        self._nak_timers: dict[tuple[int, int], Timer] = {}
        self._since_grant = 0
        #: (sim time, latency) samples for every delivered message.
        self.delivery_log: list[tuple[int, int]] = []

    # -- ingress ---------------------------------------------------------------

    def handle(self, packet: Packet, header: MmtHeader) -> None:
        if header.msg_type == MsgType.HEARTBEAT:
            self._handle_heartbeat(packet, header)
            return
        tracer = self.stack.tracer
        if header.msg_type == MsgType.RETX_DATA:
            self.stats.retransmissions_received += 1
            self._flow(*header.flow_key).retransmissions += 1
            if tracer is not None:
                tracer.emit(
                    "retx.recv", self.stack.host.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                )
            if header.has(Feature.SEQUENCED):
                self._sample_rtt(header)
        if header.has(Feature.SEQUENCED):
            if not self._track_sequenced(header):
                if tracer is not None:
                    tracer.emit(
                        "packet.dup", self.stack.host.name,
                        header.experiment_id, header.flow_id or 0, header.seq,
                        msg=header.msg_type.name,
                    )
                return  # duplicate
        self._deliver(packet, header)

    def _deliver(self, packet: Packet, header: MmtHeader) -> None:
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += packet.payload_size
        state = self._flow(*header.flow_key)
        state.delivered += 1
        state.bytes_delivered += packet.payload_size
        sent_at = packet.meta.get("sent_at")
        latency = self.sim.now - sent_at if sent_at is not None else 0
        self.delivery_log.append((self.sim.now, latency))
        if (
            self.config.adapt_rtt_to_path
            and sent_at is not None
            and latency > 0
            and header.msg_type == MsgType.DATA
        ):
            # Fresh data only: a retransmission's ``sent_at`` is its
            # *original* origination time, so its latency includes the
            # NAK wait and would wildly inflate the path estimate.
            if state.path_delay_ns is None:
                state.path_delay_ns = latency
            else:
                state.path_delay_ns = (state.path_delay_ns + latency) // 2
        tracer = self.stack.tracer
        if tracer is not None:
            tracer.emit(
                "packet.deliver", self.stack.host.name,
                header.experiment_id, header.flow_id or 0, header.seq,
                msg=header.msg_type.name, latency_ns=latency,
            )
        if header.has(Feature.AGE_TRACKING) and header.aged:
            self.stats.aged_packets += 1
            if tracer is not None:
                tracer.emit(
                    "packet.aged", self.stack.host.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                    age_ns=header.age_ns,
                )
        if header.has(Feature.TIMELINESS):
            self._check_deadline(header)
        if header.has(Feature.CONGESTION_CONTROL):
            self._maybe_echo_ce(packet, header)
        if self.config.grant_credits and header.has(Feature.FLOW_CONTROL):
            self._maybe_grant(packet, header)
        if self.on_message is not None:
            self.on_message(packet, header)

    # -- ECN echo (congestion-control modes) ---------------------------------

    def _maybe_echo_ce(self, packet: Packet, header: MmtHeader) -> None:
        """Echo a CE mark back to the source as a backpressure control.

        The data packet carries its sender's current pacing rate
        (PACING) and source address (BACKPRESSURE) in-band, so the
        receiver needs no per-sender state: it advises
        ``pace_rate × ecn_beta`` and the sender's
        :meth:`MmtSender.apply_backpressure` (``min(current, advised)``)
        makes repeat echoes of the same pre-reduction window no-ops —
        a DCTCP-style once-per-window multiplicative decrease.
        """
        from ..netsim.headers import Ipv4Header

        ip = packet.find(Ipv4Header)
        if ip is None or ip.ecn != ECN_CE:
            return
        self.stats.ce_marks_seen += 1
        if not header.has(Feature.BACKPRESSURE) or not header.has(Feature.PACING):
            return
        if header.pace_rate_mbps is None or not header.source_addr:
            return
        advised = max(1, int(header.pace_rate_mbps * self.config.ecn_beta))
        signal = BackpressurePayload(
            advised_rate_mbps=advised,
            origin=self.stack.host.ip,
        )
        echo = MmtHeader(
            config_id=header.config_id,
            msg_type=MsgType.BACKPRESSURE,
            experiment_id=header.experiment_id,
        )
        if self.stack.send_control(header.source_addr, echo, signal.encode()):
            self.stats.ce_echoes_sent += 1

    # -- flow control granting -----------------------------------------------

    def _maybe_grant(self, packet: Packet, header: MmtHeader) -> None:
        from ..netsim.headers import Ipv4Header

        ip = packet.find(Ipv4Header)
        if ip is None:
            return
        self._since_grant += 1
        if self._since_grant < self.config.grant_credits:
            return
        update = WindowUpdatePayload(
            credits=self._since_grant,
            delivered_total=self.stats.messages_delivered,
        )
        grant_header = MmtHeader(
            config_id=header.config_id,
            msg_type=MsgType.WINDOW,
            experiment_id=header.experiment_id,
        )
        self.stack.send_control(ip.src, grant_header, update.encode())
        self.stats.windows_granted += 1
        self._since_grant = 0

    # -- timeliness (mode 2 / "deliver-check") -----------------------------------

    def _check_deadline(self, header: MmtHeader) -> None:
        if self.sim.now <= header.deadline_ns:
            self.stats.deadline_ok += 1
            return
        self.stats.deadline_misses += 1
        if self.stack.tracer is not None:
            self.stack.tracer.emit(
                "deadline.miss", self.stack.host.name,
                header.experiment_id, header.flow_id or 0, header.seq,
                deadline_ns=header.deadline_ns, observed_ns=self.sim.now,
            )
        report = DeadlineMissPayload(
            seq=header.seq or 0,
            deadline_ns=header.deadline_ns,
            observed_ns=self.sim.now,
            experiment_id=header.experiment_id,
        )
        notify = MmtHeader(
            config_id=header.config_id,
            features=Feature.NONE,
            msg_type=MsgType.DEADLINE_MISS,
            experiment_id=header.experiment_id,
        )
        self.stack.send_control(header.notify_addr, notify, report.encode())

    # -- sequencing & NAK recovery ---------------------------------------------------

    def _sample_rtt(self, header: MmtHeader) -> None:
        """EWMA the NAK→retransmission round trip to the serving buffer."""
        state = self._flow(*header.flow_key)
        seq = unwrap(header.seq, max(state.highest_seen, state.base, 0))
        sent_at = state.nak_sent_at.pop(seq, None)
        if sent_at is None:
            return
        sample = self.sim.now - sent_at
        if state.rtt_est_ns is None:
            state.rtt_est_ns = sample
        else:
            state.rtt_est_ns = (7 * state.rtt_est_ns + sample) // 8

    def _retry_interval_ns(self, state: _FlowState) -> int:
        rtt = state.rtt_est_ns if state.rtt_est_ns is not None else self.config.initial_rtt_ns
        if self.config.adapt_rtt_to_path and state.path_delay_ns is not None:
            # The NAK round trip can never beat two one-way trips of the
            # path as it is *now*: when a trajectory ramps the delay
            # mid-flight, this floor re-derives the RTO from the current
            # delay instead of retrying off the frozen initial estimate.
            rtt = max(rtt, 2 * state.path_delay_ns)
        return max(self.config.reorder_wait_ns, int(rtt * self.config.rtt_safety))

    def _flow(self, experiment_id: int, flow_id: int = 0) -> _FlowState:
        key = (experiment_id, flow_id)
        state = self._flows.get(key)
        if state is None:
            state = _FlowState()
            self._flows[key] = state
        return state

    def _track_sequenced(self, header: MmtHeader) -> bool:
        """Update per-flow state; returns False for duplicates.

        Wire sequence numbers are 32 bits and wrap on long streams;
        tracking happens in the unbounded virtual space (serial-number
        arithmetic relative to the highest position seen).
        """
        state = self._flow(*header.flow_key)
        if header.has(Feature.RETRANSMISSION):
            state.buffer_addr = header.buffer_addr
        seq = unwrap(header.seq, max(state.highest_seen, state.base, 0))
        if seq < state.base or seq in state.received:
            self.stats.duplicates += 1
            return False
        state.received.add(seq)
        state.missing.pop(seq, None)
        state.last_nak_at.pop(seq, None)
        state.given_up.discard(seq)
        if seq > state.highest_seen:
            if not self.config.detect_gaps:
                pass  # stripe consumer: peers own the in-between seqs
            elif seq > state.base and state.highest_seen >= 0:
                newly_missing = [
                    s
                    for s in range(max(state.base, state.highest_seen + 1), seq)
                    if s not in state.received
                ]
                if newly_missing:
                    self.stats.gaps_detected += 1
                    for missing_seq in newly_missing:
                        state.missing.setdefault(missing_seq, 0)
                    self._arm_nak_timer(header.flow_key)
            elif seq > state.base and state.highest_seen < 0:
                if seq - state.base <= self.config.max_leading_gap:
                    # First packet arrived with seq > 0: leading gap.
                    self.stats.gaps_detected += 1
                    for missing_seq in range(state.base, seq):
                        state.missing.setdefault(missing_seq, 0)
                    self._arm_nak_timer(header.flow_key)
                else:
                    # Joined mid-stream: start tracking here.
                    state.base = seq
            state.highest_seen = seq
        while state.base in state.received:
            state.received.discard(state.base)
            state.base += 1
        return True

    def _handle_heartbeat(self, packet: Packet, header: MmtHeader) -> None:
        self.stats.heartbeats_received += 1
        if packet.payload is None or not self.config.detect_gaps:
            return
        heartbeat = HeartbeatPayload.decode(packet.payload)
        state = self._flow(*header.flow_key)
        if header.has(Feature.RETRANSMISSION) and header.buffer_addr != "0.0.0.0":
            state.buffer_addr = state.buffer_addr or header.buffer_addr
        highest = unwrap(
            heartbeat.highest_seq, max(state.highest_seen, state.base, 0)
        )
        if highest > state.highest_seen:
            for seq in range(max(state.base, state.highest_seen + 1), highest + 1):
                if seq not in state.received and seq not in state.missing:
                    state.missing[seq] = 0
            state.highest_seen = highest
            if state.missing:
                self.stats.gaps_detected += 1
                self._arm_nak_timer(header.flow_key)

    def _arm_nak_timer(self, flow_key: tuple[int, int]) -> None:
        """Make sure a NAK fires within ``reorder_wait`` of now.

        The timer may already be armed far in the future (retry backoff
        for seqs NAK-ed earlier); a *freshly detected* gap must not wait
        behind it, so the timer is pulled in when needed. One timer per
        ``(experiment, flow)`` so flows back off independently.
        """
        timer = self._nak_timers.get(flow_key)
        if timer is None:
            timer = Timer(self.sim, lambda: self._fire_nak(flow_key))
            self._nak_timers[flow_key] = timer
        deadline = self.sim.now + self.config.reorder_wait_ns
        if not timer.running or (timer.expires_at or 0) > deadline:
            timer.start(self.config.reorder_wait_ns)

    def _fire_nak(self, flow_key: tuple[int, int]) -> None:
        experiment_id, flow_id = flow_key
        state = self._flow(experiment_id, flow_id)
        if not state.missing:
            return
        tracer = self.stack.tracer
        if state.buffer_addr is None or state.buffer_addr == "0.0.0.0":
            # Nowhere to NAK: count the loss as unrecoverable.
            self.stats.unrecovered += len(state.missing)
            state.unrecovered += len(state.missing)
            state.given_up.update(state.missing)
            if tracer is not None:
                for seq in sorted(state.missing):
                    tracer.emit(
                        "nak.giveup", self.stack.host.name,
                        experiment_id, flow_id, wrap(seq),
                        reason="no_buffer",
                    )
            state.missing.clear()
            return
        now = self.sim.now
        retry = self._retry_interval_ns(state)
        ripe: list[int] = []
        next_due: int | None = None
        for seq in sorted(state.missing):
            count = state.missing[seq]
            if count >= self.config.max_naks:
                state.given_up.add(seq)
                self.stats.unrecovered += 1
                state.unrecovered += 1
                del state.missing[seq]
                state.last_nak_at.pop(seq, None)
                if tracer is not None:
                    tracer.emit(
                        "nak.giveup", self.stack.host.name,
                        experiment_id, flow_id, wrap(seq),
                        reason="max_naks", target=state.buffer_addr,
                    )
                continue
            if count == 0:
                due_at = now  # freshly detected gap: NAK immediately
            else:
                backoff = self.config.nak_backoff ** (count - 1)
                due_at = state.last_nak_at.get(seq, now) + int(retry * backoff)
            if due_at <= now:
                ripe.append(seq)
                state.missing[seq] = count + 1
                state.last_nak_at[seq] = now
                state.nak_sent_at.setdefault(seq, now)
                if tracer is not None:
                    tracer.emit(
                        "nak.send", self.stack.host.name,
                        experiment_id, flow_id, wrap(seq),
                        target=state.buffer_addr, attempt=count + 1,
                    )
                backoff = self.config.nak_backoff ** count  # next retry
                due_at = now + int(retry * backoff)
            next_due = due_at if next_due is None else min(next_due, due_at)
        if ripe:
            # NAKs carry 32-bit wire values; ranges split cleanly at a
            # wrap boundary because coalescing runs on masked numbers.
            nak = NakPayload.from_sequence_numbers([wrap(s) for s in ripe])
            header = MmtHeader(
                config_id=0,
                features=Feature.FLOW_ID if flow_id else Feature.NONE,
                msg_type=MsgType.NAK,
                experiment_id=experiment_id,
                flow_id=flow_id if flow_id else None,
            )
            self.stack.send_control(state.buffer_addr, header, nak.encode())
            self.stats.naks_sent += 1
            state.naks_sent += 1
        if state.missing and next_due is not None:
            # Reconciliation can reach here with no timer armed yet (a
            # detect_gaps=False receiver never NAK-ed spontaneously).
            timer = self._nak_timers.get(flow_key)
            if timer is None:
                timer = Timer(self.sim, lambda: self._fire_nak(flow_key))
                self._nak_timers[flow_key] = timer
            timer.start(max(next_due - now, 1))

    # -- end-of-run reconciliation ---------------------------------------------

    def request_missing(
        self, experiment_id: int, expected: int, flow_id: int = 0
    ) -> int:
        """Reconcile against an expected message count (end-of-run check).

        DAQ runs know how many messages a run produced; this marks every
        sequence number in ``[0, expected)`` not yet delivered as missing
        and fires a NAK immediately. Returns how many were outstanding.
        """
        state = self._flow(experiment_id, flow_id)
        newly = 0
        for seq in range(state.base, expected):
            if seq in state.received or seq in state.given_up:
                continue
            if seq not in state.missing:
                state.missing[seq] = 0
                newly += 1
        state.highest_seen = max(state.highest_seen, expected - 1)
        if state.missing:
            self._fire_nak((experiment_id, flow_id))
        return newly

    def request_sequences(
        self,
        experiment_id: int,
        seqs: Iterable[int],
        flow_id: int = 0,
        buffer_addr: str | None = None,
    ) -> int:
        """Reconcile against an explicit sequence list.

        The stripe-consumer counterpart of :meth:`request_missing`: a
        receiver behind an EJ-FAT-style balancer owns whole windows of
        the flow's sequence space, never ``[0, expected)`` — the farm
        reconciler computes exactly which seqs its bound windows still
        owe and requests those. ``buffer_addr`` seeds the NAK target for
        flows this receiver has no data-derived buffer address for yet
        (e.g. windows remapped to it after a peer crashed). Returns how
        many seqs were newly marked missing.
        """
        state = self._flow(experiment_id, flow_id)
        if buffer_addr is not None and state.buffer_addr is None:
            state.buffer_addr = buffer_addr
        newly = 0
        for seq in seqs:
            if seq < state.base or seq in state.received or seq in state.given_up:
                continue
            if seq not in state.missing:
                state.missing[seq] = 0
                newly += 1
            if seq > state.highest_seen:
                state.highest_seen = seq
        if state.missing:
            self._fire_nak((experiment_id, flow_id))
        return newly

    # -- inspection ---------------------------------------------------------------

    def outstanding(
        self, experiment_id: int | None = None, flow_id: int | None = None
    ) -> int:
        """Sequence numbers currently known-missing (awaiting recovery).

        With only ``experiment_id``, sums over that experiment's flows;
        with both, counts a single flow."""
        if experiment_id is not None and flow_id is not None:
            return len(self._flow(experiment_id, flow_id).missing)
        if experiment_id is not None:
            return sum(
                len(s.missing)
                for (exp, _fid), s in self._flows.items()
                if exp == experiment_id
            )
        return sum(len(s.missing) for s in self._flows.values())

    def complete(self, experiment_id: int, expected: int, flow_id: int = 0) -> bool:
        """True when seqs [0, expected) have all been delivered."""
        state = self._flow(experiment_id, flow_id)
        return state.base >= expected and not state.missing

    def unrecovered_for(self, experiment_id: int, flow_id: int = 0) -> int:
        """Sequence numbers one flow permanently gave up on."""
        return self._flow(experiment_id, flow_id).unrecovered

    def flow_summary(self) -> dict[tuple[int, int], dict[str, int]]:
        """Per-flow counters for telemetry / fairness accounting."""
        return {
            key: {
                "delivered": state.delivered,
                "bytes_delivered": state.bytes_delivered,
                "naks_sent": state.naks_sent,
                "unrecovered": state.unrecovered,
                "retransmissions": state.retransmissions,
                "outstanding": len(state.missing),
            }
            for key, state in sorted(self._flows.items())
        }
