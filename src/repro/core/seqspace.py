"""Serial-number arithmetic for the 32-bit sequence space.

The wire carries 32-bit sequence numbers (§5.2's fixed-size extension
field); long-running DAQ streams wrap them — at 100 Gb/s of 8 kB
messages, every ~40 minutes. Endpoints therefore track *virtual*
(unbounded) sequence numbers internally and map wire values back using
RFC 1982-style serial arithmetic: a received 32-bit value is
interpreted as the virtual sequence number closest to the current
reference point.
"""

from __future__ import annotations

SEQ_BITS = 32
SEQ_MOD = 1 << SEQ_BITS
SEQ_HALF = SEQ_MOD >> 1


def wrap(virtual_seq: int) -> int:
    """Virtual (unbounded) sequence number → 32-bit wire value."""
    if virtual_seq < 0:
        raise ValueError(f"sequence numbers are non-negative, got {virtual_seq}")
    return virtual_seq & (SEQ_MOD - 1)


def unwrap(wire_seq: int, reference: int) -> int:
    """32-bit wire value → the virtual sequence nearest ``reference``.

    ``reference`` is the receiver's current position (e.g. the highest
    virtual sequence seen). The result is the unique virtual number
    congruent to ``wire_seq`` within ±2^31 of the reference — standard
    serial-number arithmetic, so reordering and retransmission across
    a wrap boundary resolve correctly. Values that would unwrap below
    zero (early stream, reference near 0) clamp into the first epoch.
    """
    if not 0 <= wire_seq < SEQ_MOD:
        raise ValueError(f"wire sequence out of range: {wire_seq}")
    if reference < 0:
        raise ValueError(f"reference must be non-negative, got {reference}")
    epoch_base = reference - (reference % SEQ_MOD)
    candidate = epoch_base + wire_seq
    # Choose among the adjacent epochs the value closest to reference.
    best = candidate
    best_distance = abs(candidate - reference)
    for shifted in (candidate - SEQ_MOD, candidate + SEQ_MOD):
        if shifted < 0:
            continue
        distance = abs(shifted - reference)
        if distance < best_distance:
            best = shifted
            best_distance = distance
    return best


def seq_lt(a_wire: int, b_wire: int) -> bool:
    """Serial 'less than' over wire values (RFC 1982 with SERIAL_BITS=32)."""
    if not 0 <= a_wire < SEQ_MOD or not 0 <= b_wire < SEQ_MOD:
        raise ValueError("wire sequences out of range")
    return a_wire != b_wire and ((b_wire - a_wire) % SEQ_MOD) < SEQ_HALF
