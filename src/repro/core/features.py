"""Transport features, message types, and the 24-bit configuration word.

The paper's core header (§5.2) carries an 8-bit *configuration id* and
24 bits of *configuration data*; together they denote the transport's
**mode**. The configuration data activates protocol features "such as
flow or congestion control, or describe the acknowledgement scheme".

We lay the 24-bit word out as:

====  ==========================================================
bits  meaning
====  ==========================================================
0-15  feature activation bits (:class:`Feature`)
16-19 message type (:class:`MsgType`) — data vs. control traffic
20-23 acknowledgement scheme (:class:`AckScheme`)
====  ==========================================================
"""

from __future__ import annotations

from enum import IntEnum, IntFlag

CONFIG_DATA_BITS = 24
CONFIG_DATA_MAX = (1 << CONFIG_DATA_BITS) - 1

_FEATURE_BITS = 16
_MSG_TYPE_SHIFT = 16
_MSG_TYPE_BITS = 4
_ACK_SCHEME_SHIFT = 20
_ACK_SCHEME_BITS = 4


class Feature(IntFlag):
    """Feature activation bits carried in the configuration data word.

    Each bit switches on one transport feature for the *current network
    segment*; extension fields for active features follow the core
    header in a fixed order (see :mod:`repro.core.header`).
    """

    NONE = 0
    #: Packets carry a sequence number (prerequisite for loss detection).
    SEQUENCED = 1 << 0
    #: Loss is recoverable by NAK-ing an on-path retransmission buffer.
    RETRANSMISSION = 1 << 1
    #: Packets carry a delivery deadline and a miss-notification address.
    TIMELINESS = 1 << 2
    #: Network elements track age and set the ``aged`` flag past budget.
    AGE_TRACKING = 1 << 3
    #: Sender-side pacing at an explicit rate.
    PACING = 1 << 4
    #: Receiver-window flow control.
    FLOW_CONTROL = 1 << 5
    #: Congestion control (off by default: capacity-planned circuits, §5.3).
    CONGESTION_CONTROL = 1 << 6
    #: On-path elements may relay backpressure signals to the source.
    BACKPRESSURE = 1 << 7
    #: The stream may be duplicated in-network to multiple consumers.
    DUPLICATION = 1 << 8
    #: Payload is encrypted by third-party software/hardware (Req 5).
    ENCRYPTED = 1 << 9
    #: Packets carry a 16-bit flow identifier so many concurrent science
    #: streams (DUNE, Rubin, CMS, ...) can share one programmable segment
    #: with isolated per-flow dataplane state.
    FLOW_ID = 1 << 10

    @classmethod
    def all_defined(cls) -> "Feature":
        combined = cls.NONE
        for member in cls:
            combined |= member
        return combined


class MsgType(IntEnum):
    """Message types distinguishing DAQ data from control traffic."""

    DATA = 0
    #: Negative acknowledgement listing missing sequence numbers.
    NAK = 1
    #: Data retransmitted from a buffer in response to a NAK.
    RETX_DATA = 2
    #: "Deadline exceeded" notification sent to the timeliness address.
    DEADLINE_MISS = 3
    #: Backpressure signal relayed toward the source (§5.1).
    BACKPRESSURE = 4
    #: Periodic keepalive carrying the highest sequence number sent.
    HEARTBEAT = 5
    #: Control-plane announcement of a mode change (future work, §6).
    MODE_ANNOUNCE = 6
    #: Receiver-granted credit update (FLOW_CONTROL feature).
    WINDOW = 7


class AckScheme(IntEnum):
    """Acknowledgement scheme used on the current segment (§5.2)."""

    NONE = 0
    #: Receiver NAKs gaps; no positive ACKs (the pilot's scheme).
    NAK_ONLY = 1
    #: Cumulative positive ACKs (TCP-like; for interop studies).
    CUMULATIVE = 2
    #: Per-hop acknowledgement (X.25-style, §5.3).
    HOP_BY_HOP = 3


def pack_config_data(
    features: Feature,
    msg_type: MsgType = MsgType.DATA,
    ack_scheme: AckScheme = AckScheme.NONE,
) -> int:
    """Assemble the 24-bit configuration data word."""
    feature_bits = int(features)
    if feature_bits >> _FEATURE_BITS:
        raise ValueError(f"feature bits overflow 16 bits: {feature_bits:#x}")
    if not 0 <= int(msg_type) < (1 << _MSG_TYPE_BITS):
        raise ValueError(f"msg_type out of range: {msg_type}")
    if not 0 <= int(ack_scheme) < (1 << _ACK_SCHEME_BITS):
        raise ValueError(f"ack_scheme out of range: {ack_scheme}")
    return (
        feature_bits
        | (int(msg_type) << _MSG_TYPE_SHIFT)
        | (int(ack_scheme) << _ACK_SCHEME_SHIFT)
    )


def unpack_config_data(word: int) -> tuple[Feature, MsgType, AckScheme]:
    """Split a 24-bit configuration data word into its parts."""
    if not 0 <= word <= CONFIG_DATA_MAX:
        raise ValueError(f"config data out of range: {word:#x}")
    features = Feature(word & ((1 << _FEATURE_BITS) - 1))
    msg_type = MsgType((word >> _MSG_TYPE_SHIFT) & ((1 << _MSG_TYPE_BITS) - 1))
    ack_scheme = AckScheme((word >> _ACK_SCHEME_SHIFT) & ((1 << _ACK_SCHEME_BITS) - 1))
    return features, msg_type, ack_scheme
