"""Packet-train codec: multi-header encode/decode in one struct call.

EJ-FAT sustains its event rates by treating packet *trains* — bursts of
back-to-back datagrams belonging to one event window — as the unit of
work instead of individual packets (arXiv:2303.16351), and Transport
Layer Networking argues the same economy for in-network processing
(arXiv:2204.02861). This module brings that idea to the MMT codec:

- :func:`encode_train` serializes N headers back-to-back into a
  preallocated ``bytearray`` (or a fresh one) and returns a
  ``memoryview`` of the written region. When every header in the train
  shares one extension-feature combination — the overwhelmingly common
  case: a DAQ burst is one mode — the whole train is packed by a
  *single* precompiled :class:`struct.Struct` whose format is the
  per-header format repeated N times, so the per-packet cost collapses
  to appending values to one flat argument list.
- :func:`decode_train` is the inverse: it probes the feature bits of
  each header (three raw byte reads, no object churn), slices the data
  into maximal homogeneous runs, and unpacks each run with one
  repeated-struct call. Headers built here skip :meth:`MmtHeader.validate`
  — field *presence* is correct by construction (exactly the active
  extension fields are assigned) and every range is enforced by the
  struct widths — and are marked validated for the validate-once
  ``encode()`` contract.

Byte identity: a train's bytes are exactly the concatenation of each
header's single-packet ``encode()`` — the repeated format is the same
struct segments laid end to end — so golden wire digests cannot move.
``tests/core/test_train_fastpath.py`` pins this against the retained
reference codec across every extension combination, and pins that a
1-packet train is byte-identical to the single-packet fast path.

Heterogeneous trains (mixed feature bits) remain correct: they fall
back to per-header encode/decode at run boundaries, trading speed for
generality run by run.
"""

from __future__ import annotations

from struct import Struct
from typing import Sequence

from .features import (
    AckScheme,
    CONFIG_DATA_MAX,
    Feature,
    MsgType,
    pack_config_data,
    unpack_config_data,
)
from .header import (
    _CODECS,
    _EXT_MASK,
    CORE_HEADER_BYTES,
    HeaderError,
    MmtHeader,
    pack_ipv4,
    unpack_ipv4,
)

__all__ = ["TrainBuffer", "decode_train", "encode_train", "train_size_bytes"]

#: (ext bits, train length) → repeated Struct. Bounded: a process uses a
#: handful of (mode, train-size) pairs, but a pathological caller could
#: sweep sizes, so evictions keep it from growing without bound.
_TRAIN_STRUCTS: dict[tuple[int, int], Struct] = {}
_TRAIN_STRUCTS_MAX = 1024

#: (features, msg_type, ack_scheme) ints → 24-bit config word. The word
#: is a pure function of the three enums; memoizing skips re-validating
#: ranges for every header of a train.
_CONFIG_WORDS: dict[tuple[int, int, int], int] = {}

#: config-data word → (Feature, MsgType, AckScheme) objects, so decode
#: builds enum instances once per distinct mode, not once per header.
_CONFIG_PARTS: dict[int, tuple[Feature, MsgType, AckScheme]] = {}


def _train_struct(bits: int, count: int) -> Struct:
    """The precompiled Struct for ``count`` homogeneous headers."""
    key = (bits, count)
    cached = _TRAIN_STRUCTS.get(key)
    if cached is None:
        if len(_TRAIN_STRUCTS) >= _TRAIN_STRUCTS_MAX:
            _TRAIN_STRUCTS.clear()
        body = _CODECS[bits].struct.format[1:]  # strip the ">" prefix
        cached = Struct(">" + body * count)
        _TRAIN_STRUCTS[key] = cached
    return cached


def _config_word(header: MmtHeader) -> int:
    key = (int(header.features), int(header.msg_type), int(header.ack_scheme))
    word = _CONFIG_WORDS.get(key)
    if word is None:
        word = pack_config_data(header.features, header.msg_type, header.ack_scheme)
        if word > CONFIG_DATA_MAX:  # pragma: no cover - pack_config_data guards
            raise HeaderError(f"config data overflow: {word:#x}")
        if len(_CONFIG_WORDS) < 65536:
            _CONFIG_WORDS[key] = word
    return word


class TrainBuffer:
    """A reusable preallocated encode target.

    ``reserve(n)`` returns the backing ``bytearray``, grown (by
    doubling) only when ``n`` exceeds the current capacity — steady
    -state train encoding allocates nothing.
    """

    __slots__ = ("data",)

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.data = bytearray(max(capacity, 1))

    def reserve(self, nbytes: int) -> bytearray:
        data = self.data
        if len(data) < nbytes:
            capacity = len(data)
            while capacity < nbytes:
                capacity *= 2
            self.data = data = bytearray(capacity)
        return data


def train_size_bytes(headers: Sequence[MmtHeader]) -> int:
    """Total wire bytes of a train (O(1) for homogeneous trains)."""
    if not headers:
        return 0
    first_bits = int(headers[0].features) & _EXT_MASK
    for header in headers:
        if int(header.features) & _EXT_MASK != first_bits:
            return sum(header.size_bytes for header in headers)
    return _CODECS[first_bits].size * len(headers)


def _append_fields(args: list, header: MmtHeader, bits: int, config_data: int) -> None:
    """Append one header's wire fields to a flat argument list.

    Mirrors :meth:`MmtHeader.encode` branch for branch (same masking,
    same field order) so train bytes match single-packet bytes exactly.
    """
    args.append(header.config_id)
    args.append((config_data >> 16) & 0xFF)
    args.append(config_data & 0xFFFF)
    args.append(header.experiment_id)
    if bits & 0x01:  # SEQUENCED
        args.append(header.seq & 0xFFFFFFFF)
    if bits & 0x02:  # RETRANSMISSION
        args.append(pack_ipv4(header.buffer_addr))
    if bits & 0x04:  # TIMELINESS
        args.append(header.deadline_ns)
        args.append(pack_ipv4(header.notify_addr))
    if bits & 0x08:  # AGE_TRACKING
        args.append(header.age_ns)
        args.append(header.age_budget_ns)
        args.append(1 if header.aged else 0)
    if bits & 0x10:  # PACING
        args.append(header.pace_rate_mbps)
    if bits & 0x80:  # BACKPRESSURE
        args.append(pack_ipv4(header.source_addr))
    if bits & 0x100:  # DUPLICATION
        args.append(header.dup_group)
        args.append(header.dup_copies)
    if bits & 0x400:  # FLOW_ID
        args.append(header.flow_id)


def encode_train(
    headers: Sequence[MmtHeader],
    buffer: "bytearray | TrainBuffer | None" = None,
    offset: int = 0,
) -> memoryview:
    """Serialize ``headers`` back-to-back; return a view of the bytes.

    With ``buffer`` (a preallocated ``bytearray``, or a
    :class:`TrainBuffer` which grows itself as needed) the train is
    packed in place starting at ``offset``; without one an
    exactly-sized buffer is allocated. Each header is validated through
    the validate-once path (a header whose configuration was already
    validated pays nothing), and the result is byte-identical to
    concatenating per-header ``encode()`` calls.
    """
    reserve = buffer.reserve if type(buffer) is TrainBuffer else None
    if reserve is not None:
        buffer = buffer.data
    if not headers:
        return memoryview(buffer if buffer is not None else bytearray(0))[
            offset:offset
        ]
    features0 = headers[0].features
    ext_bits = int(features0) & _EXT_MASK
    homogeneous = True
    for header in headers:
        features = header.features
        if features is not features0 and int(features) & _EXT_MASK != ext_bits:
            homogeneous = False
        try:
            stale = header._vmut != header._mut
        except AttributeError:
            stale = True
        if stale:
            header.validate()
    if not homogeneous:
        total = sum(header.size_bytes for header in headers)
        if reserve is not None:
            buffer = reserve(offset + total)
        elif buffer is None:
            buffer = bytearray(total)
        elif len(buffer) < offset + total:
            raise HeaderError(
                f"train needs {offset + total} bytes, buffer has {len(buffer)}"
            )
        position = offset
        for header in headers:
            position += header.encode_into(buffer, position)
        return memoryview(buffer)[offset:position]
    count = len(headers)
    packer = _train_struct(ext_bits, count)
    total = packer.size
    if reserve is not None:
        buffer = reserve(offset + total)
    elif buffer is None:
        buffer = bytearray(total)
    elif len(buffer) < offset + total:
        raise HeaderError(
            f"train needs {offset + total} bytes, buffer has {len(buffer)}"
        )
    # One config word per *mode*, not per header: enum composites are
    # singletons, so three identity tests replace the dict lookup (and
    # its slow IntFlag→int conversions) for every header of the run.
    # The branch pattern inside _append_fields depends only on the
    # extension bits, identical across the run by construction.
    first = headers[0]
    msg0 = first.msg_type
    ack0 = first.ack_scheme
    word0 = _config_word(first)
    args: list = []
    for header in headers:
        if (
            header.features is features0
            and header.msg_type is msg0
            and header.ack_scheme is ack0
        ):
            word = word0
        else:
            word = _config_word(header)
        _append_fields(args, header, ext_bits, word)
    try:
        packer.pack_into(buffer, offset, *args)
    except Exception as exc:  # field out of struct range
        raise HeaderError(f"cannot encode train: {exc}") from exc
    return memoryview(buffer)[offset : offset + total]


def _peek_bits(data, offset: int) -> int:
    """Extension-feature bits of the header starting at ``offset``.

    The feature word is the low 16 bits of the 24-bit config-data field
    — wire bytes 2..3 of the core header — so two raw byte reads
    suffice; no object is built.
    """
    return ((data[offset + 2] << 8) | data[offset + 3]) & _EXT_MASK


def _build_headers(
    values: tuple, bits: int, count: int, fields_per_header: int
) -> list[MmtHeader]:
    """Materialize ``count`` headers from one flat unpacked tuple.

    Headers are built with ``__new__`` and ``object.__setattr__`` —
    skipping the dataclass ``__init__`` and the mutation-tracking
    ``Header.__setattr__`` — because every field is assigned exactly
    once here and the counters are stamped by hand at the end:
    ``_mut = 1`` (the one ``features`` assignment ``__init__`` would
    have tracked) and ``_vmut = 1`` (presence is correct by
    construction and ranges are enforced by the struct widths, exactly
    the validate-once state ``decode_prefix`` leaves headers in).
    """
    headers: list[MmtHeader] = []
    append = headers.append
    new = MmtHeader.__new__
    oset = object.__setattr__
    index = 0
    for _ in range(count):
        config_data = (values[index + 1] << 16) | values[index + 2]
        parts = _CONFIG_PARTS.get(config_data)
        if parts is None:
            parts = unpack_config_data(config_data)
            if len(_CONFIG_PARTS) < 65536:
                _CONFIG_PARTS[config_data] = parts
        header = new(MmtHeader)
        oset(header, "config_id", values[index])
        features, msg_type, ack_scheme = parts
        oset(header, "features", features)
        oset(header, "msg_type", msg_type)
        oset(header, "ack_scheme", ack_scheme)
        oset(header, "experiment_id", values[index + 3])
        position = index + 4
        if bits & 0x01:  # SEQUENCED
            oset(header, "seq", values[position])
            position += 1
        else:
            oset(header, "seq", None)
        if bits & 0x02:  # RETRANSMISSION
            oset(header, "buffer_addr", unpack_ipv4(values[position]))
            position += 1
        else:
            oset(header, "buffer_addr", None)
        if bits & 0x04:  # TIMELINESS
            oset(header, "deadline_ns", values[position])
            oset(header, "notify_addr", unpack_ipv4(values[position + 1]))
            position += 2
        else:
            oset(header, "deadline_ns", None)
            oset(header, "notify_addr", None)
        if bits & 0x08:  # AGE_TRACKING
            oset(header, "age_ns", values[position])
            oset(header, "age_budget_ns", values[position + 1])
            oset(header, "aged", bool(values[position + 2] & 1))
            position += 3
        else:
            oset(header, "age_ns", None)
            oset(header, "age_budget_ns", None)
            oset(header, "aged", False)
        if bits & 0x10:  # PACING
            oset(header, "pace_rate_mbps", values[position])
            position += 1
        else:
            oset(header, "pace_rate_mbps", None)
        if bits & 0x80:  # BACKPRESSURE
            oset(header, "source_addr", unpack_ipv4(values[position]))
            position += 1
        else:
            oset(header, "source_addr", None)
        if bits & 0x100:  # DUPLICATION
            oset(header, "dup_group", values[position])
            oset(header, "dup_copies", values[position + 1])
            position += 2
        else:
            oset(header, "dup_group", None)
            oset(header, "dup_copies", None)
        if bits & 0x400:  # FLOW_ID
            oset(header, "flow_id", values[position])
        else:
            oset(header, "flow_id", None)
        oset(header, "_mut", 1)
        oset(header, "_vmut", 1)
        append(header)
        index += fields_per_header
    return headers


def decode_train(
    data, count: int | None = None, offset: int = 0
) -> list[MmtHeader]:
    """Parse back-to-back headers from ``data`` (bytes or memoryview).

    With ``count`` exactly that many headers are consumed (trailing
    bytes — e.g. train payload — are the caller's business); without it
    headers are parsed until ``data`` is exhausted, and leftover bytes
    that do not form a whole header are an error, mirroring
    :meth:`MmtHeader.decode`.

    Maximal homogeneous runs are unpacked with one repeated-struct call
    each; a train of one mode — the common case — costs a single
    ``unpack_from`` regardless of length.
    """
    end = len(data)
    headers: list[MmtHeader] = []
    remaining = count
    position = offset
    while (remaining is None and position < end) or (
        remaining is not None and remaining > 0
    ):
        if position + CORE_HEADER_BYTES > end:
            raise HeaderError(
                f"truncated core header in train at offset {position}"
            )
        bits = _peek_bits(data, position)
        size = _CODECS[bits].size
        # Extend the homogeneous run as far as the bits repeat.
        run = 1
        probe = position + size
        while probe + CORE_HEADER_BYTES <= end and (
            remaining is None or run < remaining
        ):
            if _peek_bits(data, probe) != bits:
                break
            run += 1
            probe += size
        run_end = position + size * run
        if run_end > end:
            raise HeaderError(
                f"truncated extension field in train at offset {position}"
            )
        codec = _CODECS[bits]
        fields_per_header = len(codec.struct.format) - 1
        values = _train_struct(bits, run).unpack_from(data, position)
        headers.extend(_build_headers(values, bits, run, fields_per_header))
        position = run_end
        if remaining is not None:
            remaining -= run
    if remaining is None and position != end:
        raise HeaderError(
            f"{end - position} trailing bytes after train"
        )
    return headers
