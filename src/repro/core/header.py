"""The MMT wire format: core header plus fixed-order extension fields.

From the paper (§5.2):

    "The core header contains 3 fields: (1) an 8-bit configuration
    identifier [...] (2) 24 bits of configuration data [...] (3) a
    32-bit experiment ID. [...] After the core header, there is a
    variable number of fixed-size, optional fields (in a fixed order)
    that depend on the activated features (configuration bits)."

The core header is exactly 8 bytes. Extension fields appear in the
fixed order below, each present iff its feature bit is set:

====================  ======  =======================================
feature               bytes   fields
====================  ======  =======================================
``SEQUENCED``         4       ``seq`` (u32)
``RETRANSMISSION``    4       ``buffer_addr`` (IPv4)
``TIMELINESS``        12      ``deadline_ns`` (u64), ``notify_addr``
``AGE_TRACKING``      17      ``age_ns`` (u64), ``age_budget_ns``
                              (u64), ``aged`` flag (u8)
``PACING``            4       ``pace_rate_mbps`` (u32)
``BACKPRESSURE``      4       ``source_addr`` (IPv4)
``DUPLICATION``       3       ``dup_group`` (u16), ``dup_copies`` (u8)
====================  ======  =======================================

The codec is byte-exact (big-endian network order) so that the paper's
"conservative, header-based processing" claim is testable: everything
an on-path element rewrites is in these bytes, never in the payload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from ..netsim.headers import Header
from .features import (
    AckScheme,
    CONFIG_DATA_MAX,
    Feature,
    MsgType,
    pack_config_data,
    unpack_config_data,
)

CORE_HEADER_BYTES = 8

#: Bits of the experiment id reserved for the instrument slice (Req 8).
SLICE_BITS = 8
SLICE_MASK = (1 << SLICE_BITS) - 1


class HeaderError(ValueError):
    """Raised for malformed MMT headers or codec misuse."""


def pack_ipv4(address: str) -> int:
    """Dotted-quad string → 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise HeaderError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise HeaderError(f"bad IPv4 address {address!r}") from None
        if not 0 <= octet <= 255:
            raise HeaderError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def unpack_ipv4(value: int) -> str:
    """32-bit integer → dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise HeaderError(f"IPv4 value out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def make_experiment_id(experiment: int, slice_id: int = 0) -> int:
    """Combine an experiment number and slice id into the 32-bit field."""
    if not 0 <= experiment < (1 << (32 - SLICE_BITS)):
        raise HeaderError(f"experiment number out of range: {experiment}")
    if not 0 <= slice_id <= SLICE_MASK:
        raise HeaderError(f"slice id out of range: {slice_id}")
    return (experiment << SLICE_BITS) | slice_id


def split_experiment_id(experiment_id: int) -> tuple[int, int]:
    """Split the 32-bit field into (experiment number, slice id)."""
    return experiment_id >> SLICE_BITS, experiment_id & SLICE_MASK


@dataclass
class MmtHeader(Header):
    """A fully-parsed MMT header (core + active extension fields).

    Extension attributes must be set iff the corresponding feature bit
    is active; :meth:`validate` (called by :meth:`encode`) enforces it.
    """

    config_id: int = 0
    features: Feature = Feature.NONE
    msg_type: MsgType = MsgType.DATA
    ack_scheme: AckScheme = AckScheme.NONE
    experiment_id: int = 0

    # SEQUENCED
    seq: int | None = None
    # RETRANSMISSION
    buffer_addr: str | None = None
    # TIMELINESS
    deadline_ns: int | None = None
    notify_addr: str | None = None
    # AGE_TRACKING
    age_ns: int | None = None
    age_budget_ns: int | None = None
    aged: bool = False
    # PACING
    pace_rate_mbps: int | None = None
    # BACKPRESSURE
    source_addr: str | None = None
    # DUPLICATION
    dup_group: int | None = None
    dup_copies: int | None = None

    _EXTENSION_LAYOUT = (
        (Feature.SEQUENCED, 4),
        (Feature.RETRANSMISSION, 4),
        (Feature.TIMELINESS, 12),
        (Feature.AGE_TRACKING, 17),
        (Feature.PACING, 4),
        (Feature.BACKPRESSURE, 4),
        (Feature.DUPLICATION, 3),
    )

    # -- Header interface ---------------------------------------------------

    @property
    def size_bytes(self) -> int:
        size = CORE_HEADER_BYTES
        for feature_bit, ext_bytes in self._EXTENSION_LAYOUT:
            if self.features & feature_bit:
                size += ext_bytes
        return size

    def copy(self) -> "MmtHeader":
        return replace(self)

    # -- convenience --------------------------------------------------------

    @property
    def experiment(self) -> int:
        return split_experiment_id(self.experiment_id)[0]

    @property
    def slice_id(self) -> int:
        return split_experiment_id(self.experiment_id)[1]

    def has(self, feature: Feature) -> bool:
        return bool(self.features & feature)

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check field presence matches active feature bits."""
        if not 0 <= self.config_id <= 0xFF:
            raise HeaderError(f"config_id out of range: {self.config_id}")
        if not 0 <= self.experiment_id <= 0xFFFFFFFF:
            raise HeaderError(f"experiment_id out of range: {self.experiment_id}")
        self._check(Feature.SEQUENCED, seq=self.seq)
        self._check(Feature.RETRANSMISSION, buffer_addr=self.buffer_addr)
        self._check(
            Feature.TIMELINESS,
            deadline_ns=self.deadline_ns,
            notify_addr=self.notify_addr,
        )
        self._check(
            Feature.AGE_TRACKING,
            age_ns=self.age_ns,
            age_budget_ns=self.age_budget_ns,
        )
        self._check(Feature.PACING, pace_rate_mbps=self.pace_rate_mbps)
        self._check(Feature.BACKPRESSURE, source_addr=self.source_addr)
        self._check(
            Feature.DUPLICATION, dup_group=self.dup_group, dup_copies=self.dup_copies
        )
        if self.aged and not self.has(Feature.AGE_TRACKING):
            raise HeaderError("aged flag set without AGE_TRACKING")

    def _check(self, feature: Feature, **fields: object) -> None:
        active = self.has(feature)
        for name, value in fields.items():
            if active and value is None:
                raise HeaderError(f"{feature.name} active but {name} is unset")
            if not active and value is not None:
                raise HeaderError(f"{name} set but {feature.name} inactive")

    # -- codec ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to network-order bytes (validates first)."""
        self.validate()
        config_data = pack_config_data(self.features, self.msg_type, self.ack_scheme)
        if config_data > CONFIG_DATA_MAX:
            raise HeaderError(f"config data overflow: {config_data:#x}")
        out = bytearray()
        out += struct.pack(
            ">BBH I",
            self.config_id,
            (config_data >> 16) & 0xFF,
            config_data & 0xFFFF,
            self.experiment_id,
        )
        if self.has(Feature.SEQUENCED):
            out += struct.pack(">I", self.seq & 0xFFFFFFFF)
        if self.has(Feature.RETRANSMISSION):
            out += struct.pack(">I", pack_ipv4(self.buffer_addr))
        if self.has(Feature.TIMELINESS):
            out += struct.pack(">QI", self.deadline_ns, pack_ipv4(self.notify_addr))
        if self.has(Feature.AGE_TRACKING):
            out += struct.pack(
                ">QQB", self.age_ns, self.age_budget_ns, 1 if self.aged else 0
            )
        if self.has(Feature.PACING):
            out += struct.pack(">I", self.pace_rate_mbps)
        if self.has(Feature.BACKPRESSURE):
            out += struct.pack(">I", pack_ipv4(self.source_addr))
        if self.has(Feature.DUPLICATION):
            out += struct.pack(">HB", self.dup_group, self.dup_copies)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "MmtHeader":
        """Parse network-order bytes into a header (strict: trailing
        bytes beyond the declared extensions are an error)."""
        header, consumed = cls.decode_prefix(data)
        if consumed != len(data):
            raise HeaderError(
                f"{len(data) - consumed} trailing bytes after MMT header"
            )
        return header

    @classmethod
    def decode_prefix(cls, data: bytes) -> tuple["MmtHeader", int]:
        """Parse a header from the front of ``data``; returns (header,
        bytes consumed). Use this when a payload follows the header."""
        if len(data) < CORE_HEADER_BYTES:
            raise HeaderError(f"truncated core header: {len(data)} bytes")
        config_id, data_hi, data_lo, experiment_id = struct.unpack(
            ">BBH I", data[:CORE_HEADER_BYTES]
        )
        config_data = (data_hi << 16) | data_lo
        features, msg_type, ack_scheme = unpack_config_data(config_data)
        header = cls(
            config_id=config_id,
            features=features,
            msg_type=msg_type,
            ack_scheme=ack_scheme,
            experiment_id=experiment_id,
        )
        offset = CORE_HEADER_BYTES

        def take(count: int) -> bytes:
            nonlocal offset
            if len(data) < offset + count:
                raise HeaderError("truncated extension field")
            chunk = data[offset : offset + count]
            offset += count
            return chunk

        if header.has(Feature.SEQUENCED):
            (header.seq,) = struct.unpack(">I", take(4))
        if header.has(Feature.RETRANSMISSION):
            header.buffer_addr = unpack_ipv4(struct.unpack(">I", take(4))[0])
        if header.has(Feature.TIMELINESS):
            deadline, notify = struct.unpack(">QI", take(12))
            header.deadline_ns = deadline
            header.notify_addr = unpack_ipv4(notify)
        if header.has(Feature.AGE_TRACKING):
            age, budget, flags = struct.unpack(">QQB", take(17))
            header.age_ns = age
            header.age_budget_ns = budget
            header.aged = bool(flags & 1)
        if header.has(Feature.PACING):
            (header.pace_rate_mbps,) = struct.unpack(">I", take(4))
        if header.has(Feature.BACKPRESSURE):
            header.source_addr = unpack_ipv4(struct.unpack(">I", take(4))[0])
        if header.has(Feature.DUPLICATION):
            header.dup_group, header.dup_copies = struct.unpack(">HB", take(3))
        header.validate()
        return header, offset
