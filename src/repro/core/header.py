"""The MMT wire format: core header plus fixed-order extension fields.

From the paper (§5.2):

    "The core header contains 3 fields: (1) an 8-bit configuration
    identifier [...] (2) 24 bits of configuration data [...] (3) a
    32-bit experiment ID. [...] After the core header, there is a
    variable number of fixed-size, optional fields (in a fixed order)
    that depend on the activated features (configuration bits)."

The core header is exactly 8 bytes. Extension fields appear in the
fixed order below, each present iff its feature bit is set:

====================  ======  =======================================
feature               bytes   fields
====================  ======  =======================================
``SEQUENCED``         4       ``seq`` (u32)
``RETRANSMISSION``    4       ``buffer_addr`` (IPv4)
``TIMELINESS``        12      ``deadline_ns`` (u64), ``notify_addr``
``AGE_TRACKING``      17      ``age_ns`` (u64), ``age_budget_ns``
                              (u64), ``aged`` flag (u8)
``PACING``            4       ``pace_rate_mbps`` (u32)
``BACKPRESSURE``      4       ``source_addr`` (IPv4)
``DUPLICATION``       3       ``dup_group`` (u16), ``dup_copies`` (u8)
``FLOW_ID``           2       ``flow_id`` (u16)
====================  ======  =======================================

``FLOW_ID`` is appended *after* every pre-existing extension so that
all headers without the bit keep their exact historical wire layout —
single-flow traffic stays byte-identical with or without this codec
revision.

The codec is byte-exact (big-endian network order) so that the paper's
"conservative, header-based processing" claim is testable: everything
an on-path element rewrites is in these bytes, never in the payload.

Performance: the codec is a per-packet hot path, so the loop-and-pack
implementation was replaced by a table of precompiled
:class:`struct.Struct` instances — one per extension-feature
combination, built lazily and cached forever. ``size_bytes`` is a dict
lookup keyed on the raw feature bits, ``encode`` is a single
``Struct.pack`` over the whole header, and ``decode`` a single
``Struct.unpack``. IPv4 string↔int conversions are memoized (topologies
use a handful of addresses). ``encode`` validates once per header
*configuration*: the result of :meth:`validate` is cached against the
header's size-mutation counter, so trusted in-pipeline rewrites of
value fields (seq, age, addresses) do not pay re-validation — only a
``features`` change does. The equivalence of the fast path with the
reference layout is pinned by ``tests/core/test_header_fastpath.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from struct import Struct

from ..netsim.headers import Header
from .features import (
    AckScheme,
    CONFIG_DATA_MAX,
    Feature,
    MsgType,
    pack_config_data,
    unpack_config_data,
)

CORE_HEADER_BYTES = 8

#: Bits of the experiment id reserved for the instrument slice (Req 8).
SLICE_BITS = 8
SLICE_MASK = (1 << SLICE_BITS) - 1


class HeaderError(ValueError):
    """Raised for malformed MMT headers or codec misuse."""


#: Memoized IPv4 codecs — topologies use a handful of distinct
#: addresses, so both directions are effectively O(1) after warm-up.
_IPV4_PACK_CACHE: dict[str, int] = {}
_IPV4_UNPACK_CACHE: dict[int, str] = {}


def pack_ipv4(address: str) -> int:
    """Dotted-quad string → 32-bit integer."""
    cached = _IPV4_PACK_CACHE.get(address)
    if cached is not None:
        return cached
    parts = address.split(".")
    if len(parts) != 4:
        raise HeaderError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise HeaderError(f"bad IPv4 address {address!r}") from None
        if not 0 <= octet <= 255:
            raise HeaderError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    if len(_IPV4_PACK_CACHE) < 65536:
        _IPV4_PACK_CACHE[address] = value
    return value


def unpack_ipv4(value: int) -> str:
    """32-bit integer → dotted-quad string."""
    cached = _IPV4_UNPACK_CACHE.get(value)
    if cached is not None:
        return cached
    if not 0 <= value <= 0xFFFFFFFF:
        raise HeaderError(f"IPv4 value out of range: {value:#x}")
    address = (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
        f"{(value >> 8) & 0xFF}.{value & 0xFF}"
    )
    if len(_IPV4_UNPACK_CACHE) < 65536:
        _IPV4_UNPACK_CACHE[value] = address
    return address


def make_experiment_id(experiment: int, slice_id: int = 0) -> int:
    """Combine an experiment number and slice id into the 32-bit field."""
    if not 0 <= experiment < (1 << (32 - SLICE_BITS)):
        raise HeaderError(f"experiment number out of range: {experiment}")
    if not 0 <= slice_id <= SLICE_MASK:
        raise HeaderError(f"slice id out of range: {slice_id}")
    return (experiment << SLICE_BITS) | slice_id


def split_experiment_id(experiment_id: int) -> tuple[int, int]:
    """Split the 32-bit field into (experiment number, slice id)."""
    return experiment_id >> SLICE_BITS, experiment_id & SLICE_MASK


# -- precompiled codec table ---------------------------------------------------

#: (feature bit value, struct segment, bytes) in wire order. The raw
#: ints mirror :class:`Feature` — pinned by tests against the enum.
_EXT_SEGMENTS: tuple[tuple[int, str, int], ...] = (
    (int(Feature.SEQUENCED), "I", 4),
    (int(Feature.RETRANSMISSION), "I", 4),
    (int(Feature.TIMELINESS), "QI", 12),
    (int(Feature.AGE_TRACKING), "QQB", 17),
    (int(Feature.PACING), "I", 4),
    (int(Feature.BACKPRESSURE), "I", 4),
    (int(Feature.DUPLICATION), "HB", 3),
    (int(Feature.FLOW_ID), "H", 2),
)

#: Bitmask of every feature that contributes extension bytes.
_EXT_MASK = 0
for _bit, _fmt, _size in _EXT_SEGMENTS:
    _EXT_MASK |= _bit

_CORE_STRUCT = Struct(">BBHI")


class _Codec:
    """Precompiled wire codec for one extension-feature combination."""

    __slots__ = ("struct", "bits", "size")

    def __init__(self, ext_bits: int) -> None:
        fmt = ">BBHI"
        size = CORE_HEADER_BYTES
        for bit, segment, seg_size in _EXT_SEGMENTS:
            if ext_bits & bit:
                fmt += segment
                size += seg_size
        self.struct = Struct(fmt)
        self.bits = ext_bits
        self.size = size
        assert self.struct.size == size


#: ext-bits → codec, filled eagerly for all 256 extension combinations
#: (8 size-bearing features), so lookups never miss.
_CODECS: dict[int, _Codec] = {}
for _combo in range(1 << len(_EXT_SEGMENTS)):
    _bits = 0
    for _index, (_bit, _fmt, _size) in enumerate(_EXT_SEGMENTS):
        if _combo & (1 << _index):
            _bits |= _bit
    _CODECS[_bits] = _Codec(_bits)

#: raw feature word → total header size. Keyed on the *unmasked* value
#: so ``size_bytes`` needs no bitwise-and on the (slow) IntFlag; filled
#: lazily because non-extension bits (flow control, encryption, ...)
#: can appear in any combination.
_SIZE_BY_FEATURES: dict[int, int] = {
    bits: codec.size for bits, codec in _CODECS.items()
}


@dataclass(slots=True)
class MmtHeader(Header):
    """A fully-parsed MMT header (core + active extension fields).

    Extension attributes must be set iff the corresponding feature bit
    is active; :meth:`validate` (called by :meth:`encode`) enforces it.
    """

    config_id: int = 0
    features: Feature = Feature.NONE
    msg_type: MsgType = MsgType.DATA
    ack_scheme: AckScheme = AckScheme.NONE
    experiment_id: int = 0

    # SEQUENCED
    seq: int | None = None
    # RETRANSMISSION
    buffer_addr: str | None = None
    # TIMELINESS
    deadline_ns: int | None = None
    notify_addr: str | None = None
    # AGE_TRACKING
    age_ns: int | None = None
    age_budget_ns: int | None = None
    aged: bool = False
    # PACING
    pace_rate_mbps: int | None = None
    # BACKPRESSURE
    source_addr: str | None = None
    # DUPLICATION
    dup_group: int | None = None
    dup_copies: int | None = None
    # FLOW_ID
    flow_id: int | None = None

    #: Only a ``features`` rewrite can change the wire size (and the
    #: validation verdict's shape); see :class:`Header`.
    _SIZE_FIELDS = frozenset({"features"})

    _EXTENSION_LAYOUT = (
        (Feature.SEQUENCED, 4),
        (Feature.RETRANSMISSION, 4),
        (Feature.TIMELINESS, 12),
        (Feature.AGE_TRACKING, 17),
        (Feature.PACING, 4),
        (Feature.BACKPRESSURE, 4),
        (Feature.DUPLICATION, 3),
        (Feature.FLOW_ID, 2),
    )

    # -- Header interface ---------------------------------------------------

    @property
    def size_bytes(self) -> int:
        features = self.features
        size = _SIZE_BY_FEATURES.get(features)
        if size is None:
            # Unseen combination of non-extension bits: resolve via the
            # codec table once, then remember the unmasked word.
            size = _CODECS[int(features) & _EXT_MASK].size
            if len(_SIZE_BY_FEATURES) < 65536:
                _SIZE_BY_FEATURES[int(features)] = size
        return size

    def copy(self) -> "MmtHeader":
        # Explicit constructor call: measurably cheaper than
        # dataclasses.replace() on this 16-field header (packet.copy()
        # runs once per in-network duplicate and buffer mirror).
        return MmtHeader(
            config_id=self.config_id,
            features=self.features,
            msg_type=self.msg_type,
            ack_scheme=self.ack_scheme,
            experiment_id=self.experiment_id,
            seq=self.seq,
            buffer_addr=self.buffer_addr,
            deadline_ns=self.deadline_ns,
            notify_addr=self.notify_addr,
            age_ns=self.age_ns,
            age_budget_ns=self.age_budget_ns,
            aged=self.aged,
            pace_rate_mbps=self.pace_rate_mbps,
            source_addr=self.source_addr,
            dup_group=self.dup_group,
            dup_copies=self.dup_copies,
            flow_id=self.flow_id,
        )

    # -- convenience --------------------------------------------------------

    @property
    def experiment(self) -> int:
        return self.experiment_id >> SLICE_BITS

    @property
    def slice_id(self) -> int:
        return self.experiment_id & SLICE_MASK

    @property
    def flow_key(self) -> tuple[int, int]:
        """``(experiment_id, flow_id)`` with headers lacking the
        FLOW_ID extension mapped to flow 0 — the canonical key for all
        per-flow dataplane and endpoint state."""
        return (self.experiment_id, self.flow_id or 0)

    def has(self, feature: Feature) -> bool:
        # Both operands must be plain ints: with an IntFlag on either
        # side the bitwise-and dispatches to Feature.__and__/__rand__,
        # which re-wraps the result through the enum machinery.
        return bool(int(self.features) & int(feature))

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check field presence matches active feature bits."""
        if not 0 <= self.config_id <= 0xFF:
            raise HeaderError(f"config_id out of range: {self.config_id}")
        if not 0 <= self.experiment_id <= 0xFFFFFFFF:
            raise HeaderError(f"experiment_id out of range: {self.experiment_id}")
        self._check(Feature.SEQUENCED, seq=self.seq)
        self._check(Feature.RETRANSMISSION, buffer_addr=self.buffer_addr)
        self._check(
            Feature.TIMELINESS,
            deadline_ns=self.deadline_ns,
            notify_addr=self.notify_addr,
        )
        self._check(
            Feature.AGE_TRACKING,
            age_ns=self.age_ns,
            age_budget_ns=self.age_budget_ns,
        )
        self._check(Feature.PACING, pace_rate_mbps=self.pace_rate_mbps)
        self._check(Feature.BACKPRESSURE, source_addr=self.source_addr)
        self._check(
            Feature.DUPLICATION, dup_group=self.dup_group, dup_copies=self.dup_copies
        )
        self._check(Feature.FLOW_ID, flow_id=self.flow_id)
        if self.flow_id is not None and not 0 <= self.flow_id <= 0xFFFF:
            raise HeaderError(f"flow_id out of range: {self.flow_id}")
        if self.aged and not self.has(Feature.AGE_TRACKING):
            raise HeaderError("aged flag set without AGE_TRACKING")
        # Validate-once: remember which configuration this verdict is
        # for, so encode() only re-validates after a features rewrite.
        object.__setattr__(self, "_vmut", self._mut)

    def _check(self, feature: Feature, **fields: object) -> None:
        active = self.has(feature)
        for name, value in fields.items():
            if active and value is None:
                raise HeaderError(f"{feature.name} active but {name} is unset")
            if not active and value is not None:
                raise HeaderError(f"{name} set but {feature.name} inactive")

    # -- codec ------------------------------------------------------------------

    def encode(self, *, validate: bool | None = None) -> bytes:
        """Serialize to network-order bytes.

        ``validate=None`` (default) validates once per header
        configuration: the first encode after construction or after a
        ``features`` rewrite validates, later encodes reuse the cached
        verdict. ``validate=True`` forces a fresh validation;
        ``validate=False`` skips it entirely (trusted in-pipeline use).
        """
        if validate is None:
            try:
                stale = self._vmut != self._mut
            except AttributeError:
                stale = True
            if stale:
                self.validate()
        elif validate:
            self.validate()
        config_data = pack_config_data(self.features, self.msg_type, self.ack_scheme)
        if config_data > CONFIG_DATA_MAX:
            raise HeaderError(f"config data overflow: {config_data:#x}")
        bits = int(self.features)
        codec = _CODECS[bits & _EXT_MASK]
        args = [
            self.config_id,
            (config_data >> 16) & 0xFF,
            config_data & 0xFFFF,
            self.experiment_id,
        ]
        append = args.append
        if bits & 0x01:  # SEQUENCED
            append(self.seq & 0xFFFFFFFF)
        if bits & 0x02:  # RETRANSMISSION
            append(pack_ipv4(self.buffer_addr))
        if bits & 0x04:  # TIMELINESS
            append(self.deadline_ns)
            append(pack_ipv4(self.notify_addr))
        if bits & 0x08:  # AGE_TRACKING
            append(self.age_ns)
            append(self.age_budget_ns)
            append(1 if self.aged else 0)
        if bits & 0x10:  # PACING
            append(self.pace_rate_mbps)
        if bits & 0x80:  # BACKPRESSURE
            append(pack_ipv4(self.source_addr))
        if bits & 0x100:  # DUPLICATION
            append(self.dup_group)
            append(self.dup_copies)
        if bits & 0x400:  # FLOW_ID
            append(self.flow_id)
        try:
            return codec.struct.pack(*args)
        except Exception as exc:  # field out of struct range
            raise HeaderError(f"cannot encode header: {exc}") from exc

    def encode_into(self, buffer: bytearray, offset: int = 0) -> int:
        """Serialize into ``buffer`` at ``offset`` (single-buffer path);
        returns the number of bytes written."""
        data = self.encode()
        end = offset + len(data)
        buffer[offset:end] = data
        return len(data)

    @classmethod
    def decode(cls, data: bytes) -> "MmtHeader":
        """Parse network-order bytes into a header (strict: trailing
        bytes beyond the declared extensions are an error)."""
        header, consumed = cls.decode_prefix(data)
        if consumed != len(data):
            raise HeaderError(
                f"{len(data) - consumed} trailing bytes after MMT header"
            )
        return header

    @classmethod
    def decode_prefix(cls, data: bytes) -> tuple["MmtHeader", int]:
        """Parse a header from the front of ``data``; returns (header,
        bytes consumed). Use this when a payload follows the header."""
        if len(data) < CORE_HEADER_BYTES:
            raise HeaderError(f"truncated core header: {len(data)} bytes")
        config_id, data_hi, data_lo, experiment_id = _CORE_STRUCT.unpack_from(data)
        config_data = (data_hi << 16) | data_lo
        features, msg_type, ack_scheme = unpack_config_data(config_data)
        header = cls(
            config_id=config_id,
            features=features,
            msg_type=msg_type,
            ack_scheme=ack_scheme,
            experiment_id=experiment_id,
        )
        bits = int(features)
        codec = _CODECS[bits & _EXT_MASK]
        if len(data) < codec.size:
            raise HeaderError("truncated extension field")
        values = codec.struct.unpack_from(data)
        index = 4  # core fields already consumed
        if bits & 0x01:  # SEQUENCED
            header.seq = values[index]
            index += 1
        if bits & 0x02:  # RETRANSMISSION
            header.buffer_addr = unpack_ipv4(values[index])
            index += 1
        if bits & 0x04:  # TIMELINESS
            header.deadline_ns = values[index]
            header.notify_addr = unpack_ipv4(values[index + 1])
            index += 2
        if bits & 0x08:  # AGE_TRACKING
            header.age_ns = values[index]
            header.age_budget_ns = values[index + 1]
            header.aged = bool(values[index + 2] & 1)
            index += 3
        if bits & 0x10:  # PACING
            header.pace_rate_mbps = values[index]
            index += 1
        if bits & 0x80:  # BACKPRESSURE
            header.source_addr = unpack_ipv4(values[index])
            index += 1
        if bits & 0x100:  # DUPLICATION
            header.dup_group = values[index]
            header.dup_copies = values[index + 1]
            index += 2
        if bits & 0x400:  # FLOW_ID
            header.flow_id = values[index]
        header.validate()
        return header, codec.size
