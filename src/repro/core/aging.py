"""Age-of-information tracking (§5.4).

"Age-sensitivity involves tracking a time budget as DAQ data travels
through the network [...] An element updates an 'age' field, and it
additionally updates an 'aged' flag if a maximum age threshold was
exceeded by the time the packet reached that network element."

In deployment, elements compute age from a PTP-synchronized activation
timestamp carried with the packet. The simulator's clock is globally
synchronous, so the activation instant is stamped in packet ``meta``
(``mmt_age_epoch``) when AGE_TRACKING turns on, and every programmable
element rewrites the header's ``age_ns`` from it — the header field is
what travels and what downstream elements/receivers read, exactly as on
hardware.
"""

from __future__ import annotations

from ..netsim.packet import Packet
from .features import Feature
from .header import MmtHeader

AGE_EPOCH_META = "mmt_age_epoch"


def activate_age_tracking(
    header: MmtHeader, packet: Packet, now_ns: int, budget_ns: int
) -> None:
    """Start the age clock for a packet (called at mode transition)."""
    header.age_ns = 0
    header.age_budget_ns = budget_ns
    header.aged = False
    packet.meta[AGE_EPOCH_META] = now_ns


def update_age(header: MmtHeader, packet: Packet, now_ns: int) -> bool:
    """Refresh ``age_ns``/``aged`` at a network element.

    Returns True when this update newly set the ``aged`` flag. A packet
    without AGE_TRACKING (or without an activation stamp) is untouched.
    """
    if not header.has(Feature.AGE_TRACKING):
        return False
    epoch = packet.meta.get(AGE_EPOCH_META)
    if epoch is None:
        return False
    age = now_ns - epoch
    if age < header.age_ns:
        # Ages never decrease; guard against duplicated/stale stamps.
        return False
    header.age_ns = age
    if not header.aged and header.age_budget_ns is not None and age > header.age_budget_ns:
        header.aged = True
        return True
    return False


def remaining_budget_ns(header: MmtHeader) -> int | None:
    """Age budget left, or None when the packet is not age-tracked."""
    if not header.has(Feature.AGE_TRACKING):
        return None
    return header.age_budget_ns - header.age_ns
