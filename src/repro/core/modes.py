"""Modes: named feature combinations, and mode transitions.

A **mode** is the paper's unit of multi-modality: "a combination of
features [that] are activated and configured" (§5). The 8-bit
configuration id in the core header names a mode; the configuration
data carries its feature bits. On-path network elements *transition* a
packet between modes by rewriting the header (§5.3), which is what
:func:`transition` implements — it is deliberately pure header surgery
so the dataplane models can execute it under P4-like constraints.

:func:`pilot_registry` builds the three-mode setup of the pilot study
(§5.4):

- mode 0 — *identify*: experiment/slice identification only; works
  directly over L2; no reliability (sensor → DTN 1).
- mode 1 — *age-recover*: sequenced, loss-recoverable from an on-path
  buffer, age-tracked (DTN 1 → DTN 2).
- mode 2 — *deliver-check*: timeliness check at the destination.
"""

from __future__ import annotations

from dataclasses import dataclass

from .features import AckScheme, Feature
from .header import HeaderError, MmtHeader


class ModeError(ValueError):
    """Raised for unknown modes or invalid transitions."""


@dataclass(frozen=True)
class Mode:
    """An immutable mode definition."""

    config_id: int
    name: str
    features: Feature
    ack_scheme: AckScheme = AckScheme.NONE
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.config_id <= 0xFF:
            raise ModeError(f"config_id out of range: {self.config_id}")
        if (self.features & Feature.RETRANSMISSION) and not (
            self.features & Feature.SEQUENCED
        ):
            raise ModeError(f"mode {self.name!r}: RETRANSMISSION requires SEQUENCED")

    def has(self, feature: Feature) -> bool:
        # Plain-int bitwise test on both sides; with an IntFlag operand
        # the and dispatches to Feature.__and__/__rand__ (hot-path cost).
        return bool(int(self.features) & int(feature))


@dataclass
class TransitionContext:
    """Values an element supplies when activating features.

    Only the fields needed by the *newly activated* features of the
    target mode must be set; :func:`transition` raises otherwise.
    """

    now_ns: int = 0
    #: Where NAKs should be sent (the nearest upstream buffer, §5.3).
    buffer_addr: str | None = None
    #: Absolute delivery deadline and where to report misses.
    deadline_ns: int | None = None
    notify_addr: str | None = None
    #: Age budget for AGE_TRACKING (ns of allowed in-network time).
    age_budget_ns: int | None = None
    #: Pacing rate for PACING.
    pace_rate_mbps: int | None = None
    #: Where backpressure signals should go (usually the source).
    source_addr: str | None = None
    #: Duplication group/copy-count for DUPLICATION.
    dup_group: int | None = None
    dup_copies: int | None = None
    #: Sequence number to stamp when SEQUENCED is newly activated
    #: (elements keep a per-flow counter; see dataplane programs).
    seq: int | None = None


class ModeRegistry:
    """Mapping of configuration id → :class:`Mode`."""

    def __init__(self) -> None:
        self._by_id: dict[int, Mode] = {}
        self._by_name: dict[str, Mode] = {}

    def register(self, mode: Mode) -> Mode:
        if mode.config_id in self._by_id:
            raise ModeError(f"config_id {mode.config_id} already registered")
        if mode.name in self._by_name:
            raise ModeError(f"mode name {mode.name!r} already registered")
        self._by_id[mode.config_id] = mode
        self._by_name[mode.name] = mode
        return mode

    def by_id(self, config_id: int) -> Mode:
        mode = self._by_id.get(config_id)
        if mode is None:
            raise ModeError(f"unknown mode id {config_id}")
        return mode

    def by_name(self, name: str) -> Mode:
        mode = self._by_name.get(name)
        if mode is None:
            raise ModeError(f"unknown mode {name!r}")
        return mode

    def __contains__(self, config_id: int) -> bool:
        return config_id in self._by_id

    def __iter__(self):
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)


def pilot_registry() -> ModeRegistry:
    """The three-mode setup of the pilot study (§5.4)."""
    registry = ModeRegistry()
    registry.register(
        Mode(
            config_id=0,
            name="identify",
            features=Feature.NONE,
            description="Experiment identification only; unreliable; works on raw L2.",
        )
    )
    registry.register(
        Mode(
            config_id=1,
            name="age-recover",
            features=(
                Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.AGE_TRACKING
            ),
            ack_scheme=AckScheme.NAK_ONLY,
            description=(
                "Age-sensitive, recoverable-loss transport: elements add "
                "sequence numbers, track age, and point NAKs at the nearest "
                "upstream buffer."
            ),
        )
    )
    registry.register(
        Mode(
            config_id=2,
            name="deliver-check",
            features=(
                Feature.SEQUENCED
                | Feature.RETRANSMISSION
                | Feature.AGE_TRACKING
                | Feature.TIMELINESS
            ),
            ack_scheme=AckScheme.NAK_ONLY,
            description="Adds an explicit delivery deadline checked at the destination.",
        )
    )
    return registry


def extended_registry() -> ModeRegistry:
    """Pilot modes plus the optional feature modes discussed in §5/§6."""
    registry = pilot_registry()
    registry.register(
        Mode(
            config_id=3,
            name="paced",
            features=Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.PACING,
            ack_scheme=AckScheme.NAK_ONLY,
            description="Reliable transfer paced at an explicit rate (no CC).",
        )
    )
    registry.register(
        Mode(
            config_id=4,
            name="backpressured",
            features=(
                Feature.SEQUENCED
                | Feature.RETRANSMISSION
                | Feature.PACING
                | Feature.BACKPRESSURE
            ),
            ack_scheme=AckScheme.NAK_ONLY,
            description="Paced + downstream elements may signal the source to slow.",
        )
    )
    registry.register(
        Mode(
            config_id=5,
            name="fanout",
            features=(
                Feature.SEQUENCED
                | Feature.RETRANSMISSION
                | Feature.AGE_TRACKING
                | Feature.DUPLICATION
            ),
            ack_scheme=AckScheme.NAK_ONLY,
            description=(
                "In-network duplication to several consumers (alerts, §5.1); "
                "each copy keeps the nearest-buffer pointer so any consumer "
                "can recover losses."
            ),
        )
    )
    registry.register(
        Mode(
            config_id=6,
            name="secure-identify",
            features=Feature.ENCRYPTED,
            description="Identification-only with third-party payload encryption.",
        )
    )
    return registry


_REQUIRED_CONTEXT = {
    Feature.SEQUENCED: ("seq",),
    Feature.RETRANSMISSION: ("buffer_addr",),
    Feature.TIMELINESS: ("deadline_ns", "notify_addr"),
    Feature.AGE_TRACKING: ("age_budget_ns",),
    Feature.PACING: ("pace_rate_mbps",),
    Feature.BACKPRESSURE: ("source_addr",),
    Feature.DUPLICATION: ("dup_group", "dup_copies"),
}

_FEATURE_FIELDS = {
    Feature.SEQUENCED: ("seq",),
    Feature.RETRANSMISSION: ("buffer_addr",),
    Feature.TIMELINESS: ("deadline_ns", "notify_addr"),
    Feature.AGE_TRACKING: ("age_ns", "age_budget_ns"),
    Feature.PACING: ("pace_rate_mbps",),
    Feature.BACKPRESSURE: ("source_addr",),
    Feature.DUPLICATION: ("dup_group", "dup_copies"),
}

# Plain-int feature bits for transition()'s hot path: `int_mask &
# Feature.X` dispatches to Feature.__rand__ and re-wraps through the
# enum machinery, so the tests below must be int-vs-int.
_SEQUENCED = int(Feature.SEQUENCED)
_RETRANSMISSION = int(Feature.RETRANSMISSION)
_TIMELINESS = int(Feature.TIMELINESS)
_AGE_TRACKING = int(Feature.AGE_TRACKING)
_PACING = int(Feature.PACING)
_BACKPRESSURE = int(Feature.BACKPRESSURE)
_DUPLICATION = int(Feature.DUPLICATION)
_FLOW_ID = int(Feature.FLOW_ID)


def transition(header: MmtHeader, target: Mode, ctx: TransitionContext) -> MmtHeader:
    """Rewrite ``header`` in place into ``target`` mode.

    Newly activated features get their extension fields initialized from
    ``ctx`` (missing values raise :class:`ModeError`); features carried
    over keep their current values — except the retransmission buffer
    address, which is always refreshed when ``ctx.buffer_addr`` is set,
    implementing the "more recent (lower RTT) retransmission buffer"
    behaviour of §1/§5. Deactivated features get their fields cleared.

    ``FLOW_ID`` is flow *identity*, not a per-segment feature: like
    ``experiment_id`` it survives every mode rewrite, so a header that
    arrives with a flow id keeps both the bit and the value regardless
    of the target mode's feature word.
    """
    old_features = header.features
    new_features = target.features
    if int(old_features) & _FLOW_ID:
        new_features |= Feature.FLOW_ID

    # Plain ints: the bit tests below then run at C speed instead of
    # round-tripping through IntFlag.__and__ on every transition.
    old_bits = int(old_features)
    new_bits = int(new_features)
    activated = new_bits & ~old_bits
    deactivated = old_bits & ~new_bits

    for feature, fields in _REQUIRED_CONTEXT.items():
        if not activated & feature._value_:
            continue
        for name in fields:
            if getattr(ctx, name) is None:
                raise ModeError(
                    f"transition to {target.name!r} activates {feature.name} "
                    f"but ctx.{name} is unset"
                )

    # Clear fields of deactivated features first.
    for feature, fields in _FEATURE_FIELDS.items():
        if deactivated & feature._value_:
            for name in fields:
                setattr(header, name, None)
            if feature is Feature.AGE_TRACKING:
                header.aged = False

    # Initialize newly activated features.
    if activated & _SEQUENCED:
        header.seq = ctx.seq
    if activated & _RETRANSMISSION:
        header.buffer_addr = ctx.buffer_addr
    if activated & _TIMELINESS:
        header.deadline_ns = ctx.deadline_ns
        header.notify_addr = ctx.notify_addr
    if activated & _AGE_TRACKING:
        header.age_ns = 0
        header.age_budget_ns = ctx.age_budget_ns
        header.aged = False
    if activated & _PACING:
        header.pace_rate_mbps = ctx.pace_rate_mbps
    if activated & _BACKPRESSURE:
        header.source_addr = ctx.source_addr
    if activated & _DUPLICATION:
        header.dup_group = ctx.dup_group
        header.dup_copies = ctx.dup_copies

    # Refresh the NAK target to the nearest buffer when one is offered.
    if (new_bits & _RETRANSMISSION) and ctx.buffer_addr is not None:
        header.buffer_addr = ctx.buffer_addr

    header.config_id = target.config_id
    header.features = new_features
    header.ack_scheme = target.ack_scheme
    try:
        header.validate()
    except HeaderError as exc:
        raise ModeError(f"transition produced invalid header: {exc}") from exc
    return header
