"""Payload codecs for MMT control messages.

Control messages (NAK, deadline-miss, backpressure, heartbeat) travel
as MMT packets whose ``msg_type`` marks them; their small, fixed-format
payloads are encoded here. Data payloads are never interpreted by the
network (header-only processing, §5), but control payloads are consumed
by *endpoints and buffers*, which may be DTNs or smartNICs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field


class ControlCodecError(ValueError):
    """Raised on malformed control payloads."""


@dataclass(frozen=True)
class SeqRange:
    """An inclusive range of missing sequence numbers."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.end <= 0xFFFFFFFF:
            raise ControlCodecError(f"bad seq range [{self.start}, {self.end}]")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __iter__(self):
        return iter(range(self.start, self.end + 1))


@dataclass
class NakPayload:
    """A negative acknowledgement: ranges of sequence numbers to resend.

    Sent by a receiver to the header's ``buffer_addr`` — the nearest
    upstream retransmission buffer, not necessarily the source (§5.3).
    """

    ranges: list[SeqRange] = field(default_factory=list)

    MAX_RANGES = 0xFFFF

    @property
    def missing_count(self) -> int:
        return sum(len(r) for r in self.ranges)

    def encode(self) -> bytes:
        if len(self.ranges) > self.MAX_RANGES:
            raise ControlCodecError(f"too many ranges: {len(self.ranges)}")
        out = bytearray(struct.pack(">H", len(self.ranges)))
        for item in self.ranges:
            out += struct.pack(">II", item.start, item.end)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "NakPayload":
        if len(data) < 2:
            raise ControlCodecError("truncated NAK payload")
        (count,) = struct.unpack(">H", data[:2])
        expected = 2 + count * 8
        if len(data) != expected:
            raise ControlCodecError(
                f"NAK payload length {len(data)} != expected {expected}"
            )
        ranges = []
        for i in range(count):
            start, end = struct.unpack_from(">II", data, 2 + i * 8)
            ranges.append(SeqRange(start, end))
        return cls(ranges=ranges)

    @classmethod
    def from_sequence_numbers(cls, missing: list[int]) -> "NakPayload":
        """Coalesce a sorted-or-not list of seqnos into ranges."""
        if not missing:
            return cls()
        ordered = sorted(set(missing))
        ranges: list[SeqRange] = []
        start = prev = ordered[0]
        for seq in ordered[1:]:
            if seq == prev + 1:
                prev = seq
                continue
            ranges.append(SeqRange(start, prev))
            start = prev = seq
        ranges.append(SeqRange(start, prev))
        return cls(ranges=ranges)


@dataclass
class DeadlineMissPayload:
    """Report that a packet missed its delivery deadline (§5.3)."""

    seq: int
    deadline_ns: int
    observed_ns: int
    experiment_id: int

    _FORMAT = ">IQQI"

    def encode(self) -> bytes:
        return struct.pack(
            self._FORMAT, self.seq, self.deadline_ns, self.observed_ns, self.experiment_id
        )

    @classmethod
    def decode(cls, data: bytes) -> "DeadlineMissPayload":
        expected = struct.calcsize(cls._FORMAT)
        if len(data) != expected:
            raise ControlCodecError(
                f"deadline-miss payload length {len(data)} != {expected}"
            )
        seq, deadline_ns, observed_ns, experiment_id = struct.unpack(cls._FORMAT, data)
        return cls(seq, deadline_ns, observed_ns, experiment_id)


@dataclass
class BackpressurePayload:
    """Ask the source to slow down to ``advised_rate_mbps`` (§5.1)."""

    advised_rate_mbps: int
    origin: str
    #: 0 = advisory, 1 = loss observed, 2 = severe (sustained loss).
    severity: int = 0

    _FORMAT = ">IB"

    def encode(self) -> bytes:
        from .header import pack_ipv4

        return struct.pack(
            ">IIB", self.advised_rate_mbps, pack_ipv4(self.origin), self.severity
        )

    @classmethod
    def decode(cls, data: bytes) -> "BackpressurePayload":
        from .header import unpack_ipv4

        expected = struct.calcsize(">IIB")
        if len(data) != expected:
            raise ControlCodecError(
                f"backpressure payload length {len(data)} != {expected}"
            )
        rate, origin, severity = struct.unpack(">IIB", data)
        return cls(rate, unpack_ipv4(origin), severity)


@dataclass
class ModeAnnouncePayload:
    """An on-path element tells the source how its stream is being
    carried downstream (§4.2: "exchanging control messaging about
    multi-modal transports can provide a foundation for reasoning
    about end-to-end behavior in terms of hop-by-hop behavior")."""

    #: The mode the element rewrote the stream into.
    config_id: int
    #: The element's address (who is processing the stream).
    element: str
    #: When the transition happened (element-local clock).
    at_ns: int

    _FORMAT = ">BIQ"

    def encode(self) -> bytes:
        from .header import pack_ipv4

        return struct.pack(self._FORMAT, self.config_id, pack_ipv4(self.element), self.at_ns)

    @classmethod
    def decode(cls, data: bytes) -> "ModeAnnouncePayload":
        from .header import unpack_ipv4

        expected = struct.calcsize(cls._FORMAT)
        if len(data) != expected:
            raise ControlCodecError(
                f"mode-announce payload length {len(data)} != {expected}"
            )
        config_id, element, at_ns = struct.unpack(cls._FORMAT, data)
        return cls(config_id, unpack_ipv4(element), at_ns)


@dataclass
class WindowUpdatePayload:
    """Receiver-granted credits (FLOW_CONTROL): the sender may emit
    this many further messages. Credits are cumulative grants, not a
    window edge, so updates may arrive out of order harmlessly."""

    credits: int
    #: Receiver's delivered-message count when granting (diagnostics).
    delivered_total: int

    _FORMAT = ">IQ"

    def encode(self) -> bytes:
        return struct.pack(self._FORMAT, self.credits, self.delivered_total)

    @classmethod
    def decode(cls, data: bytes) -> "WindowUpdatePayload":
        expected = struct.calcsize(cls._FORMAT)
        if len(data) != expected:
            raise ControlCodecError(
                f"window payload length {len(data)} != {expected}"
            )
        credits, delivered_total = struct.unpack(cls._FORMAT, data)
        return cls(credits, delivered_total)


@dataclass
class HeartbeatPayload:
    """Periodic sender report: highest seq sent, letting receivers
    detect tail loss (a gap after the final data packet)."""

    highest_seq: int
    packets_sent: int

    _FORMAT = ">IQ"

    def encode(self) -> bytes:
        return struct.pack(self._FORMAT, self.highest_seq, self.packets_sent)

    @classmethod
    def decode(cls, data: bytes) -> "HeartbeatPayload":
        expected = struct.calcsize(cls._FORMAT)
        if len(data) != expected:
            raise ControlCodecError(f"heartbeat payload length {len(data)} != {expected}")
        highest_seq, packets_sent = struct.unpack(cls._FORMAT, data)
        return cls(highest_seq, packets_sent)
