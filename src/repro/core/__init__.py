"""The paper's primary contribution: the multi-modal DAQ transport (MMT).

Public surface:

- wire format: :class:`MmtHeader`, :class:`Feature`, :class:`MsgType`,
  :class:`AckScheme` (§5.2);
- modes: :class:`Mode`, :class:`ModeRegistry`, :func:`pilot_registry`,
  :func:`extended_registry`, :func:`transition` (§5.3);
- endpoints: :class:`MmtStack`, :class:`MmtSender`, :class:`MmtReceiver`;
- recovery: :class:`RetransmitBuffer`, :class:`BufferDirectory`;
- control payloads: :class:`NakPayload`, :class:`DeadlineMissPayload`,
  :class:`BackpressurePayload`, :class:`HeartbeatPayload`;
- aging: :func:`activate_age_tracking`, :func:`update_age`;
- packet trains: :func:`encode_train`, :func:`decode_train`,
  :func:`train_size_bytes`, :class:`TrainBuffer` (batched codec).
"""

from .aging import AGE_EPOCH_META, activate_age_tracking, remaining_budget_ns, update_age
from .control import (
    BackpressurePayload,
    ControlCodecError,
    DeadlineMissPayload,
    HeartbeatPayload,
    ModeAnnouncePayload,
    NakPayload,
    SeqRange,
    WindowUpdatePayload,
)
from .endpoint import (
    EndpointError,
    MmtReceiver,
    MmtSender,
    MmtStack,
    ReceiverConfig,
    ReceiverStats,
    SenderConfig,
    SenderStats,
)
from .features import (
    AckScheme,
    Feature,
    MsgType,
    pack_config_data,
    unpack_config_data,
)
from .header import (
    CORE_HEADER_BYTES,
    HeaderError,
    MmtHeader,
    make_experiment_id,
    pack_ipv4,
    split_experiment_id,
    unpack_ipv4,
)
from .modes import (
    Mode,
    ModeError,
    ModeRegistry,
    TransitionContext,
    extended_registry,
    pilot_registry,
    transition,
)
from .retransmit import (
    BufferDirectory,
    BufferRegistration,
    NakForwardGuard,
    RetransmitBuffer,
)
from .seqspace import SEQ_MOD, seq_lt, unwrap, wrap
from .train import TrainBuffer, decode_train, encode_train, train_size_bytes

__all__ = [
    "AGE_EPOCH_META",
    "AckScheme",
    "BackpressurePayload",
    "BufferDirectory",
    "BufferRegistration",
    "CORE_HEADER_BYTES",
    "ControlCodecError",
    "DeadlineMissPayload",
    "EndpointError",
    "Feature",
    "HeaderError",
    "HeartbeatPayload",
    "MmtHeader",
    "MmtReceiver",
    "MmtSender",
    "MmtStack",
    "Mode",
    "ModeAnnouncePayload",
    "ModeError",
    "ModeRegistry",
    "MsgType",
    "NakForwardGuard",
    "NakPayload",
    "ReceiverConfig",
    "ReceiverStats",
    "RetransmitBuffer",
    "SEQ_MOD",
    "SenderConfig",
    "SenderStats",
    "SeqRange",
    "TrainBuffer",
    "TransitionContext",
    "WindowUpdatePayload",
    "activate_age_tracking",
    "decode_train",
    "encode_train",
    "extended_registry",
    "make_experiment_id",
    "pack_config_data",
    "pack_ipv4",
    "pilot_registry",
    "remaining_budget_ns",
    "seq_lt",
    "split_experiment_id",
    "train_size_bytes",
    "transition",
    "unpack_config_data",
    "unpack_ipv4",
    "unwrap",
    "update_age",
    "wrap",
]
