"""Retransmission buffers: the "nearest buffer" of hop-by-hop recovery.

The paper's reliability scheme (§5.3) "generalizes the hop-by-hop
behavior of X25 [...] by providing an explicit source (IP address)
where to request the retransmission", behaving like short-term
publish-subscribe rather than TCP's always-ask-the-source. A
:class:`RetransmitBuffer` is that explicit source: a byte-bounded ring
of recently-seen sequenced packets, hosted by a DTN or a smartNIC,
serving NAKs for the experiments it caches.

Buffers register in a :class:`BufferDirectory` (the paper's "map of
in-network programmable resources", §6) that elements consult to stamp
the nearest buffer's address into headers as flows pass by.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..netsim.packet import Packet
from .control import NakPayload, SeqRange


@dataclass
class RetransmitStats:
    """Counters for one buffer."""

    stored: int = 0
    evicted: int = 0
    duplicates_ignored: int = 0
    nak_requests: int = 0
    hits: int = 0
    misses: int = 0
    #: Times the buffer failed (crash/restart wiped its contents).
    failures: int = 0
    #: Stores refused while the buffer was failed.
    rejected_failed: int = 0


class RetransmitBuffer:
    """Byte-bounded store of sequenced packets, keyed by
    ``(experiment, flow, seq)``.

    Stored entries are *copies* of the in-flight packet so later in-path
    header rewrites never mutate the cached bytes. Eviction is FIFO.

    Concurrent flows sharing one experiment (and thus one buffer) are
    isolated by the ``flow_id`` component of the key: two flows using
    the same sequence numbers can never serve each other's bytes.
    Single-flow callers omit ``flow_id`` and land on flow 0, matching
    headers without the FLOW_ID extension.
    """

    def __init__(self, capacity_bytes: int, address: str) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        #: The IP address NAKs should be sent to for this buffer.
        self.address = address
        self.bytes_used = 0
        #: True while the buffer is dead: contents lost, stores refused,
        #: every fetch a miss. Set by :meth:`fail` (fault injection /
        #: element crash), cleared by :meth:`restore`.
        self.failed = False
        self.stats = RetransmitStats()
        #: Causal tracer (repro.trace.Tracer) or None; records cache
        #: outcomes under the element label ``buffer:<address>``.
        self.tracer = None
        self._store: OrderedDict[tuple[int, int], Packet] = OrderedDict()

    @property
    def _trace_label(self) -> str:
        return f"buffer:{self.address}"

    def fail(self) -> None:
        """Kill the buffer: drop all cached state and refuse new stores.

        Models an FPGA buffer engine dying (EJ-FAT-style restartable
        dataplane components lose their state); the protocol around it
        must cope with every subsequent NAK going unmet.
        """
        if self.failed:
            return
        self.failed = True
        self.stats.failures += 1
        if self.tracer is not None:
            self.tracer.emit("buffer.fail", self._trace_label, entries=len(self._store))
        self.clear()

    def restore(self) -> None:
        """Bring a failed buffer back, empty (restarts never recover state)."""
        self.failed = False
        if self.tracer is not None:
            self.tracer.emit("buffer.restore", self._trace_label)

    def clear(self) -> None:
        """Drop all cached packets (restart wipe); counters survive."""
        self._store.clear()
        self.bytes_used = 0

    def store(
        self, experiment_id: int, seq: int, packet: Packet, flow_id: int = 0
    ) -> None:
        """Cache a copy of ``packet``; replaces nothing on duplicate."""
        if self.failed:
            self.stats.rejected_failed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "buffer.reject", self._trace_label,
                    experiment_id, flow_id, seq, reason="failed",
                )
            return
        key = (experiment_id, flow_id, seq)
        if key in self._store:
            self.stats.duplicates_ignored += 1
            return
        copy = packet.copy()
        self._store[key] = copy
        self.bytes_used += copy.size_bytes
        self.stats.stored += 1
        if self.tracer is not None:
            self.tracer.emit(
                "buffer.store", self._trace_label,
                experiment_id, flow_id, seq, bytes=copy.size_bytes,
            )
        while self.bytes_used > self.capacity_bytes and self._store:
            evicted_key, evicted = self._store.popitem(last=False)
            self.bytes_used -= evicted.size_bytes
            self.stats.evicted += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "buffer.evict", self._trace_label,
                    evicted_key[0], evicted_key[1], evicted_key[2],
                )

    def fetch(
        self, experiment_id: int, seq: int, flow_id: int = 0
    ) -> Packet | None:
        """Retrieve a cached packet copy, or None when not held."""
        packet = self._store.get((experiment_id, flow_id, seq))
        if packet is None:
            self.stats.misses += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "buffer.miss", self._trace_label, experiment_id, flow_id, seq
                )
            return None
        self.stats.hits += 1
        if self.tracer is not None:
            self.tracer.emit(
                "buffer.hit", self._trace_label, experiment_id, flow_id, seq
            )
        return packet.copy()

    def serve_nak(
        self, experiment_id: int, nak: NakPayload, flow_id: int = 0
    ) -> tuple[list[Packet], list[SeqRange]]:
        """Resolve a NAK: (recovered packet copies, still-missing ranges)."""
        self.stats.nak_requests += 1
        recovered: list[Packet] = []
        unmet: list[int] = []
        for item in nak.ranges:
            for seq in item:
                packet = self.fetch(experiment_id, seq, flow_id)
                if packet is None:
                    unmet.append(seq)
                else:
                    recovered.append(packet)
        return recovered, NakPayload.from_sequence_numbers(unmet).ranges

    def holds(self, experiment_id: int, seq: int, flow_id: int = 0) -> bool:
        return (experiment_id, flow_id, seq) in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> float:
        return self.bytes_used / self.capacity_bytes

    def bytes_by_flow(self) -> dict[tuple[int, int], int]:
        """Current residency per ``(experiment, flow)``.

        Computed on demand (telemetry scrape cadence), so the per-packet
        store/evict path stays counter-free."""
        residency: dict[tuple[int, int], int] = {}
        for (experiment_id, flow_id, _seq), packet in self._store.items():
            key = (experiment_id, flow_id)
            residency[key] = residency.get(key, 0) + packet.size_bytes
        return residency


@dataclass
class BufferRegistration:
    """A buffer's entry in the directory."""

    address: str
    #: Position along the path, in the same coordinate the directory's
    #: users employ (hop index from the source in our topologies).
    path_position: int
    #: Which experiments this buffer caches (empty = all).
    experiments: frozenset[int] = field(default_factory=frozenset)
    #: Liveness: dead buffers are skipped by every lookup. Toggled via
    #: :meth:`BufferDirectory.mark_down` / :meth:`BufferDirectory.mark_up`.
    alive: bool = True

    def serves(self, experiment_id: int) -> bool:
        return not self.experiments or experiment_id in self.experiments


class BufferDirectory:
    """The shared map of on-path retransmission buffers (§6, challenge 1).

    The pilot "pre-supposes knowledge of in-network resources at system
    start" (§5.3); this directory is that pre-supposed knowledge:
    elements query :meth:`nearest_upstream` to refresh a header's
    ``buffer_addr`` with the closest buffer behind them.

    Registrations are deliberately *experiment*-scoped, not flow-scoped:
    concurrent flows of one experiment share the same physical buffers
    (the shared DTN of the pilot), and isolation between them lives in
    the buffer's ``(experiment, flow, seq)`` store keys — never in
    which buffer a flow is pointed at.
    """

    def __init__(self) -> None:
        self._registrations: list[BufferRegistration] = []
        #: Liveness transitions recorded, for telemetry/operator audit.
        self.marks_down = 0
        self.marks_up = 0

    def register(
        self,
        address: str,
        path_position: int,
        experiments: frozenset[int] | set[int] = frozenset(),
    ) -> BufferRegistration:
        registration = BufferRegistration(
            address=address,
            path_position=path_position,
            experiments=frozenset(experiments),
        )
        self._registrations.append(registration)
        return registration

    def mark_down(self, address: str) -> int:
        """Record buffer(s) at ``address`` as dead; returns how many."""
        marked = 0
        for registration in self._registrations:
            if registration.address == address and registration.alive:
                registration.alive = False
                marked += 1
        self.marks_down += marked
        return marked

    def mark_up(self, address: str) -> int:
        """Record buffer(s) at ``address`` as live again; returns how many."""
        marked = 0
        for registration in self._registrations:
            if registration.address == address and not registration.alive:
                registration.alive = True
                marked += 1
        self.marks_up += marked
        return marked

    def alive_count(self, experiment_id: int | None = None) -> int:
        """Live registrations (optionally only those serving an experiment)."""
        return sum(
            1
            for r in self._registrations
            if r.alive and (experiment_id is None or r.serves(experiment_id))
        )

    def nearest_upstream(
        self, experiment_id: int, position: int
    ) -> BufferRegistration | None:
        """Closest *live* buffer at or behind ``position`` serving the
        experiment. Ties on ``path_position`` break toward the earliest
        registration (deterministic: ``max`` keeps the first maximum).
        """
        candidates = [
            r
            for r in self._registrations
            if r.alive and r.path_position <= position and r.serves(experiment_id)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.path_position)

    def failover_for(
        self, experiment_id: int, position: int
    ) -> BufferRegistration | None:
        """Best live buffer to stamp when the nearest upstream died.

        Prefers the nearest live *upstream* buffer (normal case); when
        nothing upstream survives, falls back to the closest live buffer
        *ahead* of ``position`` — still upstream of the receiver, so its
        address remains a valid NAK target. ``None`` means no live
        buffer serves the experiment at all (degrade the mode).
        """
        upstream = self.nearest_upstream(experiment_id, position)
        if upstream is not None:
            return upstream
        ahead = [
            r
            for r in self._registrations
            if r.alive and r.path_position > position and r.serves(experiment_id)
        ]
        if not ahead:
            return None
        return min(ahead, key=lambda r: r.path_position)

    def __len__(self) -> int:
        return len(self._registrations)

    def __iter__(self):
        return iter(self._registrations)


class NakForwardGuard:
    """Caps identical unmet-NAK forwards so fallback cycles die out.

    Chained buffers forward unserved NAK ranges to a fallback address;
    a mis-wired fallback cycle would otherwise circulate the same NAK
    forever. Each distinct ``(experiment, flow, ranges)`` key may be
    forwarded ``limit`` times, then it is suppressed. The flow id is
    part of the key so one flow's suppressed NAK loop never mutes an
    identical seq-range NAK from a different flow (and vice versa: a
    noisy flow cannot spend another flow's forward budget).

    The table is a bounded LRU: when it outgrows ``capacity`` the
    *stalest* key is evicted — and every :meth:`allow` call refreshes
    its key, including suppressed ones, so an actively-looping NAK can
    never be evicted by churn and restart its loop. (The previous
    implementation wiped the whole table at the cap, which reopened
    every suppressed loop at once.)
    """

    def __init__(self, limit: int = 3, capacity: int = 1024) -> None:
        if limit <= 0 or capacity <= 0:
            raise ValueError("limit and capacity must be positive")
        self.limit = limit
        self.capacity = capacity
        self.suppressed = 0
        self._counts: OrderedDict[tuple, int] = OrderedDict()

    def allow(self, key: tuple) -> bool:
        """True if this forward is under the cap; counts the attempt."""
        count = self._counts.get(key)
        if count is not None:
            self._counts.move_to_end(key)
            if count >= self.limit:
                self.suppressed += 1
                return False
            self._counts[key] = count + 1
            return True
        self._counts[key] = 1
        while len(self._counts) > self.capacity:
            self._counts.popitem(last=False)
        return True

    def __len__(self) -> int:
        return len(self._counts)
