"""Retransmission buffers: the "nearest buffer" of hop-by-hop recovery.

The paper's reliability scheme (§5.3) "generalizes the hop-by-hop
behavior of X25 [...] by providing an explicit source (IP address)
where to request the retransmission", behaving like short-term
publish-subscribe rather than TCP's always-ask-the-source. A
:class:`RetransmitBuffer` is that explicit source: a byte-bounded ring
of recently-seen sequenced packets, hosted by a DTN or a smartNIC,
serving NAKs for the experiments it caches.

Buffers register in a :class:`BufferDirectory` (the paper's "map of
in-network programmable resources", §6) that elements consult to stamp
the nearest buffer's address into headers as flows pass by.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..netsim.packet import Packet
from .control import NakPayload, SeqRange


@dataclass
class RetransmitStats:
    """Counters for one buffer."""

    stored: int = 0
    evicted: int = 0
    duplicates_ignored: int = 0
    nak_requests: int = 0
    hits: int = 0
    misses: int = 0


class RetransmitBuffer:
    """Byte-bounded store of sequenced packets, keyed by (experiment, seq).

    Stored entries are *copies* of the in-flight packet so later in-path
    header rewrites never mutate the cached bytes. Eviction is FIFO.
    """

    def __init__(self, capacity_bytes: int, address: str) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        #: The IP address NAKs should be sent to for this buffer.
        self.address = address
        self.bytes_used = 0
        self.stats = RetransmitStats()
        self._store: OrderedDict[tuple[int, int], Packet] = OrderedDict()

    def store(self, experiment_id: int, seq: int, packet: Packet) -> None:
        """Cache a copy of ``packet``; replaces nothing on duplicate."""
        key = (experiment_id, seq)
        if key in self._store:
            self.stats.duplicates_ignored += 1
            return
        copy = packet.copy()
        self._store[key] = copy
        self.bytes_used += copy.size_bytes
        self.stats.stored += 1
        while self.bytes_used > self.capacity_bytes and self._store:
            _evicted_key, evicted = self._store.popitem(last=False)
            self.bytes_used -= evicted.size_bytes
            self.stats.evicted += 1

    def fetch(self, experiment_id: int, seq: int) -> Packet | None:
        """Retrieve a cached packet copy, or None when not held."""
        packet = self._store.get((experiment_id, seq))
        if packet is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return packet.copy()

    def serve_nak(self, experiment_id: int, nak: NakPayload) -> tuple[list[Packet], list[SeqRange]]:
        """Resolve a NAK: (recovered packet copies, still-missing ranges)."""
        self.stats.nak_requests += 1
        recovered: list[Packet] = []
        unmet: list[int] = []
        for item in nak.ranges:
            for seq in item:
                packet = self.fetch(experiment_id, seq)
                if packet is None:
                    unmet.append(seq)
                else:
                    recovered.append(packet)
        return recovered, NakPayload.from_sequence_numbers(unmet).ranges

    def holds(self, experiment_id: int, seq: int) -> bool:
        return (experiment_id, seq) in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> float:
        return self.bytes_used / self.capacity_bytes


@dataclass
class BufferRegistration:
    """A buffer's entry in the directory."""

    address: str
    #: Position along the path, in the same coordinate the directory's
    #: users employ (hop index from the source in our topologies).
    path_position: int
    #: Which experiments this buffer caches (empty = all).
    experiments: frozenset[int] = field(default_factory=frozenset)

    def serves(self, experiment_id: int) -> bool:
        return not self.experiments or experiment_id in self.experiments


class BufferDirectory:
    """The shared map of on-path retransmission buffers (§6, challenge 1).

    The pilot "pre-supposes knowledge of in-network resources at system
    start" (§5.3); this directory is that pre-supposed knowledge:
    elements query :meth:`nearest_upstream` to refresh a header's
    ``buffer_addr`` with the closest buffer behind them.
    """

    def __init__(self) -> None:
        self._registrations: list[BufferRegistration] = []

    def register(
        self,
        address: str,
        path_position: int,
        experiments: frozenset[int] | set[int] = frozenset(),
    ) -> BufferRegistration:
        registration = BufferRegistration(
            address=address,
            path_position=path_position,
            experiments=frozenset(experiments),
        )
        self._registrations.append(registration)
        return registration

    def nearest_upstream(
        self, experiment_id: int, position: int
    ) -> BufferRegistration | None:
        """Closest buffer at or behind ``position`` serving the experiment."""
        candidates = [
            r
            for r in self._registrations
            if r.path_position <= position and r.serves(experiment_id)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.path_position)

    def __len__(self) -> int:
        return len(self._registrations)

    def __iter__(self):
        return iter(self._registrations)
