"""Segment-local recovery: in-network gap repair (§5.3).

The paper's reliability scheme "generalizes the hop-by-hop behavior of
X25 (albeit at a higher layer)". The receiver-driven NAK path
(:mod:`repro.core.endpoint`) asks the nearest buffer; this module adds
the *network-driven* half: a buffer-hosting element watches the
sequence numbers transiting it and repairs gaps **itself** by NAK-ing
the next buffer upstream. Losses on an upstream segment are then healed
mid-path — the destination sees a complete stream and pays only the
segment RTT, never its own NAK round trip.

The element needs per-flow state (highest seq, missing set, retry
timers) — exactly the footprint an FPGA smartNIC has and a switch ASIC
does not, so this program is intended for :class:`AlveoNic`-class
devices (its state lives beside their retransmission buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.control import NakPayload
from ..core.features import Feature, MsgType
from ..core.header import MmtHeader
from ..core.seqspace import unwrap, wrap
from ..netsim.engine import Timer
from ..netsim.packet import Packet
from ..netsim.units import MICROSECOND
from .element import ProgrammableElement
from .pipeline import Action, Metadata, PacketView, Table
from .programs import Program


@dataclass
class _SegmentFlow:
    """Per-experiment tracking at one element."""

    highest_seen: int = -1
    missing: dict[int, int] = field(default_factory=dict)  # virtual seq → naks
    #: Where the flow's packets are headed (for forwarding repairs).
    dst_ip: str | None = None
    repaired: set[int] = field(default_factory=set)


@dataclass
class SegmentRecoveryStats:
    """Counters for one segment-recovery instance."""
    gaps_detected: int = 0
    naks_sent: int = 0
    repairs_received: int = 0
    repairs_forwarded: int = 0
    given_up: int = 0


class SegmentRecoveryProgram(Program):
    """Element-side gap detection and upstream repair.

    ``upstream_buffer_addr`` names the buffer to NAK (the previous
    recovery point on the path). Repairs arrive addressed to this
    element, are mirrored into its own buffer (so downstream consumers
    can still recover from *here*), and are forwarded to the flow's
    destination.
    """

    def __init__(
        self,
        upstream_buffer_addr: str,
        reorder_wait_ns: int = 50 * MICROSECOND,
        retry_interval_ns: int = 2_000_000,
        max_naks: int = 6,
        max_leading_gap: int = 4096,
    ) -> None:
        self.upstream_buffer_addr = upstream_buffer_addr
        self.reorder_wait_ns = reorder_wait_ns
        self.retry_interval_ns = retry_interval_ns
        self.max_naks = max_naks
        self.max_leading_gap = max_leading_gap
        self.stats = SegmentRecoveryStats()
        self._flows: dict[int, _SegmentFlow] = {}
        self._timers: dict[int, Timer] = {}
        self._element: ProgrammableElement | None = None

    # -- installation -------------------------------------------------------

    def install(self, element: ProgrammableElement) -> None:
        if element.ip is None:
            raise ValueError(f"{element.name} needs an IP for segment recovery")
        self._element = element
        element.segment_recovery = self
        table = Table(
            "segment_recovery", keys=[],
            default_action=Action("segment_observe", self._action),
        )
        element.pipeline.add_table(table)

    # -- pipeline side --------------------------------------------------------

    def _action(self, view: PacketView, meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.SEQUENCED):
            return
        if header.msg_type not in (MsgType.DATA, MsgType.RETX_DATA):
            return
        dst = view.get("ip.dst") if view.has_header("ip") else None
        self._observe(header.experiment_id, header.seq, dst)

    def _observe(self, experiment_id: int, wire_seq: int, dst_ip: str | None) -> None:
        flow = self._flows.setdefault(experiment_id, _SegmentFlow())
        if dst_ip is not None:
            flow.dst_ip = dst_ip
        seq = unwrap(wire_seq, max(flow.highest_seen, 0))
        flow.missing.pop(seq, None)
        if seq <= flow.highest_seen:
            return
        if flow.highest_seen < 0:
            # First sighting: only a bounded leading gap is plausible loss.
            start = max(0, seq - self.max_leading_gap) if seq <= self.max_leading_gap else seq
        else:
            start = flow.highest_seen + 1
        newly = [s for s in range(start, seq) if s not in flow.repaired]
        if newly:
            self.stats.gaps_detected += 1
            for s in newly:
                flow.missing.setdefault(s, 0)
            self._arm(experiment_id)
        flow.highest_seen = seq

    def _arm(self, experiment_id: int) -> None:
        timer = self._timers.get(experiment_id)
        if timer is None:
            assert self._element is not None
            timer = Timer(
                self._element.sim, lambda: self._fire(experiment_id)
            )
            self._timers[experiment_id] = timer
        deadline = self._element.sim.now + self.reorder_wait_ns
        if not timer.running or (timer.expires_at or 0) > deadline:
            timer.start(self.reorder_wait_ns)

    def _fire(self, experiment_id: int) -> None:
        assert self._element is not None
        flow = self._flows.get(experiment_id)
        if flow is None or not flow.missing:
            return
        ripe = []
        for seq in sorted(flow.missing):
            count = flow.missing[seq]
            if count >= self.max_naks:
                del flow.missing[seq]
                self.stats.given_up += 1
                continue
            flow.missing[seq] = count + 1
            ripe.append(seq)
        if ripe:
            nak = NakPayload.from_sequence_numbers([wrap(s) for s in ripe])
            header = MmtHeader(msg_type=MsgType.NAK, experiment_id=experiment_id)
            self._element._send_mmt(
                self.upstream_buffer_addr, header,
                payload_size=len(nak.encode()), payload=nak.encode(),
            )
            self.stats.naks_sent += 1
        if flow.missing:
            self._timers[experiment_id].start(self.retry_interval_ns)

    # -- repair arrivals (called by the element for RETX addressed to it) ------

    def on_repair(self, packet: Packet, header: MmtHeader) -> None:
        assert self._element is not None
        self.stats.repairs_received += 1
        flow = self._flows.setdefault(header.experiment_id, _SegmentFlow())
        seq = unwrap(header.seq, max(flow.highest_seen, 0))
        flow.missing.pop(seq, None)
        flow.repaired.add(seq)
        # Keep a copy here: this element is a recovery point too.
        if self._element.buffer is not None:
            self._element.buffer.store(header.experiment_id, header.seq, packet)
        if flow.dst_ip is None:
            return
        # Re-inject through the element's pipeline so downstream
        # programs (steering, duplication, taps) apply to repairs too;
        # the flow's recorded destination replaces our own address.
        from ..netsim.headers import EthernetHeader, EtherType, IpProto, Ipv4Header

        repaired = Packet(
            headers=[
                EthernetHeader(src=self._element.mac, ethertype=EtherType.IPV4),
                Ipv4Header(
                    src=self._element.ip, dst=flow.dst_ip, proto=IpProto.MMT
                ),
                header.copy(),
            ],
            payload_size=packet.payload_size,
            payload=packet.payload,
            meta=dict(packet.meta),
        )
        self.stats.repairs_forwarded += 1
        self._element.process_mmt(repaired)
