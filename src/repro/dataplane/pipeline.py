"""A P4-style match-action pipeline model with Tofino-like constraints.

The paper restricts in-network support to "conservative, header-based
processing, using features that existing P4 hardware supports well"
(§5). This module models that envelope:

- **headers only** — a :class:`PacketView` exposes *header fields* by
  dotted path (``"mmt.seq"``, ``"ip.dscp"``); the payload is not
  reachable through it, so programs physically cannot do payload
  processing;
- **no floats** — P4/Tofino has no floating-point types [Fingerhut
  2020]; every value written through the view must be an ``int``, a
  ``bool``, or an address string (which hardware holds as bits);
- **match-action tables** — exact / ternary / LPM / range matching,
  priority-ordered entries, a default action, all populated by a
  control plane at configuration time;
- **stateful registers** — bounded integer arrays
  (:class:`RegisterArray`), the mechanism behind in-flight sequence
  numbering and rate-limited signal generation;
- **intrinsic metadata** — ingress port, a timestamp, egress spec,
  clone/mirror lists, and digest-like generated packets.

The model favors fidelity of *restrictions* over cycle accuracy: it
will reject programs that could not run on the pilot's hardware, which
is the property the reproduction needs.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.header import MmtHeader
from ..netsim.headers import EthernetHeader, Header, Ipv4Header, TcpHeader, UdpHeader
from ..netsim.packet import Packet


class PipelineError(RuntimeError):
    """Raised when a program violates the dataplane constraint envelope."""


#: Header name → type, the parse graph the view understands.
HEADER_TYPES: dict[str, type[Header]] = {
    "eth": EthernetHeader,
    "ip": Ipv4Header,
    "udp": UdpHeader,
    "tcp": TcpHeader,
    "mmt": MmtHeader,
}

#: Field values may be ints, bools, or address-like strings — never floats
#: (Tofino has no float types) and never bytes (that would be payload).
_ALLOWED_VALUE_TYPES = (int, bool, str)

#: Memoized LPM machinery: prefix string → (version, network int, mask
#: int) and address string → (version, int). Tables are configured once
#: but matched per packet, so parsing with :mod:`ipaddress` on every
#: lookup dominated table apply time; real hardware compiles prefixes
#: into TCAM entries at table-programming time for the same reason.
_LPM_PREFIX_CACHE: dict[str, tuple[int, int, int] | None] = {}
_LPM_ADDR_CACHE: dict[object, tuple[int, int] | None] = {}


def _lpm_match(pattern: str, value: object) -> bool:
    prefix = _LPM_PREFIX_CACHE.get(pattern)
    if prefix is None and pattern not in _LPM_PREFIX_CACHE:
        try:
            network = ipaddress.ip_network(pattern, strict=False)
            prefix = (
                network.version,
                int(network.network_address),
                int(network.netmask),
            )
        except ValueError:
            prefix = None
        _LPM_PREFIX_CACHE[pattern] = prefix
    if prefix is None:
        return False
    addr = _LPM_ADDR_CACHE.get(value)
    if addr is None and value not in _LPM_ADDR_CACHE:
        try:
            parsed = ipaddress.ip_address(value)
            addr = (parsed.version, int(parsed))
        except ValueError:
            addr = None
        if len(_LPM_ADDR_CACHE) < 65536:
            _LPM_ADDR_CACHE[value] = addr
    if addr is None or addr[0] != prefix[0]:
        return False
    return (addr[1] & prefix[2]) == prefix[1]


class RegisterArray:
    """A bounded array of W-bit integers, as a P4 register extern."""

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        if size <= 0:
            raise PipelineError(f"register {name!r}: size must be positive")
        if width_bits <= 0 or width_bits > 64:
            raise PipelineError(f"register {name!r}: width must be 1..64 bits")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._cells = [0] * size

    def read(self, index: int) -> int:
        return self._cells[self._check(index)]

    def write(self, index: int, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise PipelineError(f"register {self.name!r}: value must be int")
        self._cells[self._check(index)] = value & self._mask

    def reset(self) -> None:
        """Zero every cell — what an element restart does to its state."""
        self._cells = [0] * self.size

    def read_add(self, index: int, delta: int = 1) -> int:
        """Atomically return the current value then add ``delta`` (the
        read-modify-write P4 registers support)."""
        i = self._check(index)
        current = self._cells[i]
        self._cells[i] = (current + delta) & self._mask
        return current

    def _check(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise PipelineError(f"register {self.name!r}: index must be int")
        if not 0 <= index < self.size:
            raise PipelineError(
                f"register {self.name!r}: index {index} out of range 0..{self.size - 1}"
            )
        return index


#: Knuth multiplicative-hash constant (odd, near 2^16/phi) used to
#: spread flow ids across register indexes.
_FLOW_HASH_MULT = 40503


def flow_register_index(experiment_id: int, flow_id: int, size: int) -> int:
    """Register index for per-``(experiment, flow)`` dataplane state.

    The index a program uses to key register cells when several
    concurrent flows of one experiment cross the same element: the flow
    id is spread by a multiplicative hash so adjacent flow ids do not
    collide modulo small register sizes. Flow 0 (headers without the
    FLOW_ID extension) reduces to the historical per-experiment index,
    keeping single-flow register layouts — and thus replay traces —
    unchanged.
    """
    return (experiment_id + flow_id * _FLOW_HASH_MULT) % size


class PacketView:
    """Guarded access to a packet's *headers only*.

    Programs read and write fields by dotted path. Attempting to touch
    anything but a known header field — in particular the payload —
    raises :class:`PipelineError`.
    """

    def __init__(self, packet: Packet) -> None:
        self._packet = packet

    def has_header(self, name: str) -> bool:
        header_type = HEADER_TYPES.get(name)
        if header_type is None:
            raise PipelineError(f"unknown header {name!r}")
        return self._packet.has(header_type)

    def get(self, path: str) -> Any:
        header, attr = self._resolve(path)
        value = getattr(header, attr)
        if value is not None and not isinstance(value, _ALLOWED_VALUE_TYPES):
            raise PipelineError(f"field {path!r} has non-dataplane type {type(value)}")
        return value

    def set(self, path: str, value: Any) -> None:
        header, attr = self._resolve(path)
        if value is not None and not isinstance(value, _ALLOWED_VALUE_TYPES):
            raise PipelineError(
                f"cannot write {type(value).__name__} to {path!r}: "
                "dataplane values are ints, bools, or addresses"
            )
        if isinstance(value, float):
            raise PipelineError("floating point is not available in the dataplane")
        setattr(header, attr, value)

    def mmt(self) -> MmtHeader:
        """The MMT header itself — header-only by construction, so
        handing out the object keeps within the envelope."""
        header = self._packet.find(MmtHeader)
        if header is None:
            raise PipelineError("packet carries no MMT header")
        return header

    @property
    def packet_size_bytes(self) -> int:
        """Total packet length is available to hardware (for metering)."""
        return self._packet.size_bytes

    # Simulation bookkeeping: deployments carry PTP-synchronized
    # timestamps in wire fields; the simulator's globally-synchronous
    # clock lets us keep the activation instant in packet meta instead
    # (see repro.core.aging). These two methods are that substitute —
    # they accept only ints so they cannot smuggle payload processing.

    def sim_stamp(self, key: str, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise PipelineError("sim_stamp values must be ints (timestamps)")
        self._packet.meta[key] = value

    def sim_read(self, key: str) -> int | None:
        value = self._packet.meta.get(key)
        if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
            raise PipelineError(f"sim meta {key!r} is not an int")
        return value

    def _resolve(self, path: str) -> tuple[Header, str]:
        try:
            header_name, attr = path.split(".", 1)
        except ValueError:
            raise PipelineError(f"field path {path!r} must be 'header.field'") from None
        header_type = HEADER_TYPES.get(header_name)
        if header_type is None:
            raise PipelineError(f"unknown header {header_name!r} in {path!r}")
        header = self._packet.find(header_type)
        if header is None:
            raise PipelineError(f"packet has no {header_name!r} header")
        if attr.startswith("_") or not hasattr(header, attr):
            raise PipelineError(f"unknown field {path!r}")
        if attr in ("payload", "payload_size", "headers", "meta"):
            raise PipelineError(f"field {path!r} is not a header field")
        return header, attr


@dataclass
class Metadata:
    """Per-packet intrinsic metadata (P4 standard_metadata analogue)."""

    ingress_port: str = ""
    now_ns: int = 0
    #: Set by actions to steer the packet; empty string = use the
    #: element's normal forwarding (routing table).
    egress_spec: str = ""
    drop: bool = False
    #: Destination IPs for in-network duplicated copies (§5.1 "streams
    #: can be duplicated in the network"); the element resolves routes.
    clones: list[str] = field(default_factory=list)
    #: Set by buffer-tap actions: the hosting element should mirror this
    #: packet into its retransmission buffer after the pipeline.
    mirror_to_buffer: bool = False
    #: Control packets generated by the pipeline (digest-to-CPU style),
    #: as (dst_ip, MmtHeader, payload bytes) triples.
    generated: list[tuple[str, MmtHeader, bytes]] = field(default_factory=list)
    #: Scratch space for user metadata between tables (ints/strs only).
    scratch: dict[str, int | str | bool] = field(default_factory=dict)

    def mark_to_drop(self) -> None:
        self.drop = True

    def clone_to(self, egress: str) -> None:
        self.clones.append(egress)

    def emit(self, dst_ip: str, header: MmtHeader, payload: bytes = b"") -> None:
        self.generated.append((dst_ip, header, payload))


ActionFn = Callable[[PacketView, Metadata, dict[str, Any]], None]


@dataclass(frozen=True)
class Action:
    """A named dataplane action; ``fn(view, meta, params)``."""

    name: str
    fn: ActionFn

    def __call__(self, view: PacketView, meta: Metadata, params: dict[str, Any]) -> None:
        self.fn(view, meta, params)


NOP = Action("nop", lambda _view, _meta, _params: None)
DROP = Action("drop", lambda _view, meta, _params: meta.mark_to_drop())


class MatchKind:
    """Table match kinds (exact/ternary/lpm/range)."""
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"

    ALL = (EXACT, TERNARY, LPM, RANGE)


@dataclass
class TableEntry:
    """One table entry: key patterns → action(params)."""

    patterns: tuple[Any, ...]
    action: Action
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    hits: int = 0


class Table:
    """A priority-ordered match-action table.

    ``keys`` are field paths (or ``"meta.<name>"`` for intrinsic
    metadata); ``match_kinds`` aligns with keys. Patterns per kind:

    - exact: the value itself (or the wildcard ``None``);
    - ternary: ``(value, mask)`` over ints, or ``None``;
    - lpm: an ``"a.b.c.d/len"`` prefix string, or ``None``;
    - range: ``(lo, hi)`` inclusive over ints, or ``None``.
    """

    def __init__(
        self,
        name: str,
        keys: list[str],
        match_kinds: list[str] | None = None,
        default_action: Action = NOP,
        default_params: dict[str, Any] | None = None,
        max_entries: int = 4096,
        relevant_features: int | None = None,
    ) -> None:
        self.name = name
        #: Feature bits whose *presence* this table's actions depend on:
        #: a packet carrying none of them passes through untouched, so a
        #: train whose combined feature word misses the mask can skip the
        #: table entirely (the per-element fast-forward). ``None`` — the
        #: safe default — means "unknown / acts on everything" and
        #: disables fast-forward for the hosting pipeline.
        self.relevant_features = relevant_features
        self.keys = keys
        self.match_kinds = match_kinds or [MatchKind.EXACT] * len(keys)
        if len(self.match_kinds) != len(keys):
            raise PipelineError(f"table {name!r}: match_kinds/keys length mismatch")
        for kind in self.match_kinds:
            if kind not in MatchKind.ALL:
                raise PipelineError(f"table {name!r}: unknown match kind {kind!r}")
        self.default_action = default_action
        self.default_params = default_params or {}
        self.max_entries = max_entries
        self.entries: list[TableEntry] = []
        self.lookups = 0
        self.default_hits = 0

    def add_entry(
        self,
        patterns: tuple[Any, ...] | list[Any],
        action: Action,
        params: dict[str, Any] | None = None,
        priority: int = 0,
    ) -> TableEntry:
        if len(self.entries) >= self.max_entries:
            raise PipelineError(f"table {self.name!r} is full ({self.max_entries})")
        patterns = tuple(patterns)
        if len(patterns) != len(self.keys):
            raise PipelineError(
                f"table {self.name!r}: entry has {len(patterns)} patterns, "
                f"needs {len(self.keys)}"
            )
        entry = TableEntry(patterns, action, params or {}, priority)
        self.entries.append(entry)
        self.entries.sort(key=lambda e: -e.priority)
        return entry

    def apply(self, view: PacketView, meta: Metadata) -> None:
        self.lookups += 1
        key = self._build_key(view, meta)
        if key is None:
            self.default_hits += 1
            self.default_action(view, meta, self.default_params)
            return
        for entry in self.entries:
            if self._matches(entry.patterns, key):
                entry.hits += 1
                entry.action(view, meta, entry.params)
                return
        self.default_hits += 1
        self.default_action(view, meta, self.default_params)

    def _build_key(self, view: PacketView, meta: Metadata) -> tuple[Any, ...] | None:
        values = []
        for path in self.keys:
            if path.startswith("meta."):
                attr = path[5:]
                if attr in meta.scratch:
                    values.append(meta.scratch[attr])
                else:
                    values.append(getattr(meta, attr, None))
                continue
            header_name = path.split(".", 1)[0]
            if not view.has_header(header_name):
                return None  # parser would not have extracted this header
            values.append(view.get(path))
        return tuple(values)

    def _matches(self, patterns: tuple[Any, ...], key: tuple[Any, ...]) -> bool:
        for kind, pattern, value in zip(self.match_kinds, patterns, key):
            if pattern is None:
                continue
            if kind == MatchKind.EXACT:
                if value != pattern:
                    return False
            elif kind == MatchKind.TERNARY:
                want, mask = pattern
                if not isinstance(value, int):
                    return False
                if (value & mask) != (want & mask):
                    return False
            elif kind == MatchKind.LPM:
                if not _lpm_match(pattern, value):
                    return False
            elif kind == MatchKind.RANGE:
                lo, hi = pattern
                if not isinstance(value, int) or not lo <= value <= hi:
                    return False
        return True


class Pipeline:
    """An ordered sequence of tables with shared registers."""

    def __init__(self, name: str, stages: int = 12) -> None:
        self.name = name
        self.stages = stages
        self.tables: list[Table] = []
        self.registers: dict[str, RegisterArray] = {}
        self.packets_processed = 0

    def add_table(self, table: Table) -> Table:
        if len(self.tables) >= self.stages:
            raise PipelineError(
                f"pipeline {self.name!r}: exceeded {self.stages} stages"
            )
        self.tables.append(table)
        return table

    def add_register(self, name: str, size: int, width_bits: int = 32) -> RegisterArray:
        if name in self.registers:
            raise PipelineError(f"register {name!r} already exists")
        register = RegisterArray(name, size, width_bits)
        self.registers[name] = register
        return register

    def register(self, name: str) -> RegisterArray:
        register = self.registers.get(name)
        if register is None:
            raise PipelineError(f"no register named {name!r}")
        return register

    def reset_registers(self) -> None:
        """Zero all register arrays (element restart: stateful memory
        does not survive a bitstream/image reload)."""
        for register in self.registers.values():
            register.reset()

    def can_fast_forward(self, feature_bits: int) -> bool:
        """True when a train with combined ``feature_bits`` is a no-op.

        A pipeline is a no-op for a train when *every* table declares a
        ``relevant_features`` mask and none of the train's feature bits
        intersect any mask — then neither header mutation, drops,
        clones, buffer mirrors, nor generated control traffic can occur,
        so the hosting element may forward the train without running the
        pipeline at all. One table with an undeclared (``None``) mask
        makes the pipeline opaque and disables fast-forward: correctness
        is the default, programs opt in by declaring what they act on.
        An empty pipeline is trivially a no-op.
        """
        for table in self.tables:
            mask = table.relevant_features
            if mask is None or feature_bits & mask:
                return False
        return True

    def process(self, packet: Packet, meta: Metadata) -> Metadata:
        """Run the packet through every table in order."""
        self.packets_processed += 1
        view = PacketView(packet)
        for table in self.tables:
            table.apply(view, meta)
            if meta.drop:
                break
        return meta
