"""Tofino2 switch model.

An Intel Tofino2 is a fixed-latency, match-action programmable switch
ASIC: 20 MAU stages per pipeline, header-only processing, no floating
point, SRAM-bounded tables, and stateful register externs — all
constraints :mod:`repro.dataplane.pipeline` enforces. The pilot (§5.4)
used an EdgeCore Tofino2 for in-flight header rewriting: age updates,
nearest-buffer stamping, and mode transitions.

Functional model: per-packet pipeline latency is a constant (ASIC
pipelines are fixed-latency by construction); forwarding follows the
element's routing table. The latency is modelled at ingress by
scheduling pipeline execution ``pipeline_latency_ns`` after arrival.
"""

from __future__ import annotations

from ..core.header import MmtHeader
from ..netsim.engine import Simulator
from ..netsim.link import Port
from ..netsim.packet import Packet
from .element import ProgrammableElement

#: Tofino2 ships 20 match-action stages per pipeline.
TOFINO2_STAGES = 20

#: Typical port-to-port latency of a Tofino-class ASIC (~600 ns cut-through).
TOFINO2_LATENCY_NS = 600


class TofinoSwitch(ProgrammableElement):
    """An EdgeCore Tofino2-like programmable switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        ip: str | None = None,
        pipeline_latency_ns: int = TOFINO2_LATENCY_NS,
    ) -> None:
        super().__init__(sim, name, mac=mac, ip=ip, stages=TOFINO2_STAGES)
        if pipeline_latency_ns < 0:
            raise ValueError("pipeline latency must be >= 0")
        self.pipeline_latency_ns = pipeline_latency_ns
        #: Per-flow ingress counters, modelling Tofino's direct match
        #: counters keyed on the FLOW_ID extension: ``(experiment,
        #: flow) → [packets, bytes]``. Only flow-tagged traffic is
        #: counted, so legacy single-flow pipelines pay one attribute
        #: test per packet and nothing else.
        self._flow_counters: dict[tuple[int, int], list[int]] = {}

    def receive(self, packet: Packet, port: Port) -> None:
        mmt = packet.find(MmtHeader)
        if mmt is not None and mmt.flow_id is not None:
            counter = self._flow_counters.get(mmt.flow_key)
            if counter is None:
                counter = [0, 0]
                self._flow_counters[mmt.flow_key] = counter
            counter[0] += 1
            counter[1] += packet.size_bytes
        if self.pipeline_latency_ns == 0:
            super().receive(packet, port)
            return
        self.sim.schedule(self.pipeline_latency_ns, super().receive, packet, port)

    def flow_counters(self) -> dict[tuple[int, int], tuple[int, int]]:
        """``(experiment, flow) → (packets, bytes)`` seen at ingress."""
        return {key: (c[0], c[1]) for key, c in self._flow_counters.items()}
