"""An EJ-FAT-style in-network load balancer.

The pilot's 3-mode setup is "inspired by EJ-FAT" (§5.3) — the
ESnet/JLab FPGA Accelerated Transport load balancer, which spreads a
DAQ stream over a farm of processing nodes by *event tick*, keeping
every fragment of one event on the same node.

:class:`LoadBalancerProgram` reproduces that behaviour on an
FPGA-class element: sequenced DATA packets are grouped into fixed-size
sequence windows (the "tick"); the first packet of a window binds the
window to a backend (least-loaded wins), and every later packet —
including retransmissions — follows the calendar, so event locality
survives loss recovery. Backends report fill levels through a control
callback (EJ-FAT's sync messages) and can be drained for maintenance;
bound windows keep flowing to a draining backend, new windows avoid it.

Tagged traffic keeps a calendar *per flow* — two flows' seq spaces are
independent, so ``(flow, tick)`` is the binding key and untagged
traffic lands on flow 0 exactly as before.

Liveness is a separate axis from draining, mirroring
:class:`~repro.core.retransmit.BufferDirectory`: :meth:`mark_down`
declares a backend crashed — its bound windows are remapped to live
backends on the spot (redirect-on-crash) and it receives nothing until
:meth:`mark_up`. When a packet arrives for a window whose backend died
*between* control-loop updates, first-transmission DATA always rebinds
(the work is new; nothing was delivered yet), while retransmitted DATA
follows the ``retx_policy``: ``"rebind"`` (default) moves the window so
repair lands where the rest of the event will, ``"follow"`` preserves
the historical behaviour of steering into the dead backend — kept only
to make the failure mode testable and explicit.

Header-only on the wire: steering is an ``ip.dst`` rewrite keyed on
the MMT seq field, well inside the P4 envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.features import Feature, MsgType
from ..core.seqspace import unwrap
from .element import ProgrammableElement
from .pipeline import Action, Metadata, PacketView, Table
from .programs import Program

#: Valid values of ``LoadBalancerProgram(retx_policy=...)``.
RETX_POLICIES = ("rebind", "follow")


class LoadBalancerError(RuntimeError):
    """Raised for balancer misconfiguration."""


@dataclass
class BackendState:
    """One processing node behind the balancer."""

    address: str
    #: Last reported fill level (0-100), EJ-FAT sync-message style.
    fill_pct: int = 0
    draining: bool = False
    #: Crashed / marked down: receives nothing, bound windows remapped.
    dead: bool = False
    windows_assigned: int = 0
    packets_steered: int = 0
    bytes_steered: int = 0


@dataclass(frozen=True)
class SteeringRecord:
    """One steering decision, as recorded when ``record_log`` is on."""

    epoch: int
    kind: str  # bind | steer | redirect | retx-rebind | follow-dead
    flow_id: int
    tick: int
    backend: str


class LoadBalancerProgram(Program):
    """Window-sticky, load-aware stream distribution."""

    def __init__(
        self,
        experiment_id: int,
        backends: list[str],
        window: int = 64,
        calendar_horizon: int = 4096,
        retx_policy: str = "rebind",
        record_log: bool = False,
    ) -> None:
        if not backends:
            raise LoadBalancerError("need at least one backend")
        if window <= 0:
            raise LoadBalancerError("window must be positive")
        if retx_policy not in RETX_POLICIES:
            raise LoadBalancerError(
                f"retx_policy must be one of {RETX_POLICIES}, got {retx_policy!r}"
            )
        self.experiment_id = experiment_id
        self.window = window
        self.calendar_horizon = calendar_horizon
        self.retx_policy = retx_policy
        self.backends: dict[str, BackendState] = {
            address: BackendState(address=address) for address in backends
        }
        #: ``(flow_id, tick) → backend address`` — the sticky calendar.
        self._calendar: dict[tuple[int, int], str] = {}
        self._highest_tick: dict[int, int] = {}
        self._highest_seq: dict[int, int] = {}
        self.unsteerable = 0
        #: Table generation: bumps on every binding-affecting control
        #: mutation (drain, liveness marks). Within one epoch the
        #: calendar maps every (flow, seq) to exactly one backend.
        self.epoch = 0
        self.table_updates = 0
        #: Windows remapped because their backend was marked down.
        self.redirects = 0
        #: Retransmissions that triggered a rebind (policy "rebind").
        self.retx_rebinds = 0
        #: Retransmissions steered into a dead backend (policy "follow").
        self.follows_dead = 0
        #: Chronological :class:`SteeringRecord` list, or None when off.
        self.steering_log: list[SteeringRecord] | None = [] if record_log else None
        #: Causal tracer (repro.trace.Tracer) or None.
        self.tracer = None
        self._element_name = "balancer"

    # -- control plane --------------------------------------------------------

    def report_load(self, backend: str, fill_pct: int) -> None:
        """Backend feedback (EJ-FAT sync): update its fill level."""
        state = self._require(backend)
        state.fill_pct = max(0, min(100, fill_pct))
        self.table_updates += 1

    def drain(self, backend: str) -> None:
        """Stop assigning *new* windows to a backend."""
        state = self._require(backend)
        if not state.draining:
            state.draining = True
            self.epoch += 1
            self.table_updates += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "balancer.drain", self._element_name,
                    backend=backend, epoch=self.epoch,
                )

    def undrain(self, backend: str) -> None:
        state = self._require(backend)
        if state.draining:
            state.draining = False
            self.epoch += 1
            self.table_updates += 1

    def mark_down(self, backend: str) -> list[tuple[int, int]]:
        """Declare a backend dead and remap its bound windows.

        Redirect-on-crash: every window bound to the dead backend is
        rebound to a live one, so in-flight first-pass traffic *and* the
        repair traffic that follows land on the new owner. Returns the
        remapped ``(flow_id, tick)`` keys (empty when nothing moved —
        including the degenerate no-live-backend case, where bindings
        are left in place rather than invented).
        """
        state = self._require(backend)
        if state.dead:
            return []
        state.dead = True
        self.epoch += 1
        self.table_updates += 1
        moved: list[tuple[int, int]] = []
        if any(not s.dead for s in self.backends.values()):
            for key, address in sorted(self._calendar.items()):
                if address == backend:
                    self._rebind(key, kind="redirect")
                    moved.append(key)
        return moved

    def mark_up(self, backend: str) -> None:
        """A backend returns to service (new windows may bind to it)."""
        state = self._require(backend)
        if state.dead:
            state.dead = False
            self.epoch += 1
            self.table_updates += 1

    def add_backend(self, address: str) -> None:
        if address in self.backends:
            raise LoadBalancerError(f"backend {address!r} already registered")
        self.backends[address] = BackendState(address=address)
        self.epoch += 1
        self.table_updates += 1

    def _require(self, backend: str) -> BackendState:
        state = self.backends.get(backend)
        if state is None:
            raise LoadBalancerError(f"unknown backend {backend!r}")
        return state

    # -- installation -----------------------------------------------------------

    def install(self, element: ProgrammableElement) -> None:
        self._element_name = element.name
        table = Table(
            "ejfat_balance", keys=[],
            default_action=Action("balance", self._action),
        )
        element.pipeline.add_table(table)

    # -- dataplane --------------------------------------------------------------

    def _action(self, view: PacketView, _meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if header.experiment_id != self.experiment_id:
            return
        if header.msg_type not in (MsgType.DATA, MsgType.RETX_DATA):
            return
        if not header.has(Feature.SEQUENCED):
            self.unsteerable += 1
            return
        flow_id = header.flow_id or 0
        backend = self.route(
            flow_id, header.seq, is_retx=header.msg_type == MsgType.RETX_DATA
        )
        state = self.backends[backend]
        state.packets_steered += 1
        state.bytes_steered += view.packet_size_bytes
        if self.tracer is not None:
            self.tracer.emit(
                "balancer.steer", self._element_name,
                header.experiment_id, flow_id, header.seq,
                backend=backend, msg=header.msg_type.name,
            )
        if view.has_header("ip"):
            view.set("ip.dst", backend)

    def route(self, flow_id: int, seq: int, is_retx: bool = False) -> str:
        """The steering decision for one ``(flow, seq)`` — the pure core
        of :meth:`_action`, also driven directly by property tests and
        reconciliation (no packet required)."""
        virtual = unwrap(seq, self._highest_seq.get(flow_id, 0))
        self._highest_seq[flow_id] = max(self._highest_seq.get(flow_id, 0), virtual)
        tick = virtual // self.window
        key = (flow_id, tick)
        backend = self._calendar.get(key)
        if backend is None:
            return self._assign(tick, flow_id)
        if self.backends[backend].dead:
            # The bound backend died between control-loop updates. New
            # work always rebinds; repair traffic obeys the policy.
            if is_retx and self.retx_policy == "follow":
                self.follows_dead += 1
                self._log("follow-dead", flow_id, tick, backend)
                return backend
            return self._rebind(key, kind="retx-rebind" if is_retx else "redirect")
        self._log("steer", flow_id, tick, backend)
        return backend

    def _assign(self, tick: int, flow_id: int = 0) -> str:
        chosen = self._choose()
        self._calendar[(flow_id, tick)] = chosen.address
        chosen.windows_assigned += 1
        self._highest_tick[flow_id] = max(self._highest_tick.get(flow_id, -1), tick)
        self._prune(flow_id)
        self._log("bind", flow_id, tick, chosen.address)
        if self.tracer is not None:
            self.tracer.emit(
                "balancer.bind", self._element_name,
                self.experiment_id, flow_id,
                tick=tick, backend=chosen.address, epoch=self.epoch,
            )
        return chosen.address

    def _rebind(self, key: tuple[int, int], kind: str) -> str:
        flow_id, tick = key
        old = self._calendar[key]
        chosen = self._choose()
        self._calendar[key] = chosen.address
        chosen.windows_assigned += 1
        if kind == "retx-rebind":
            self.retx_rebinds += 1
        else:
            self.redirects += 1
        self._log(kind, flow_id, tick, chosen.address)
        if self.tracer is not None:
            self.tracer.emit(
                "balancer.redirect", self._element_name,
                self.experiment_id, flow_id,
                tick=tick, backend=chosen.address, was=old,
                epoch=self.epoch, cause=kind,
            )
        return chosen.address

    def _choose(self) -> BackendState:
        """Least-loaded live, non-draining backend (degrading gracefully
        when nothing healthy remains): reported fill first, then
        assignment count, address as the deterministic tiebreak."""
        candidates = [
            s for s in self.backends.values() if not s.draining and not s.dead
        ]
        if not candidates:
            candidates = [s for s in self.backends.values() if not s.dead]
        if not candidates:
            candidates = list(self.backends.values())  # everything dead: degrade
        return min(candidates, key=lambda s: (s.fill_pct, s.windows_assigned, s.address))

    def _log(self, kind: str, flow_id: int, tick: int, backend: str) -> None:
        if self.steering_log is not None:
            self.steering_log.append(
                SteeringRecord(self.epoch, kind, flow_id, tick, backend)
            )

    def _prune(self, flow_id: int) -> None:
        floor = self._highest_tick.get(flow_id, -1) - self.calendar_horizon
        if floor <= 0 or len(self._calendar) <= self.calendar_horizon:
            return
        for key in [k for k in self._calendar if k[0] == flow_id and k[1] < floor]:
            del self._calendar[key]

    # -- inspection ----------------------------------------------------------------

    def distribution(self) -> dict[str, int]:
        """Packets steered per backend."""
        return {address: s.packets_steered for address, s in self.backends.items()}

    def backend_for(self, seq: int, flow_id: int = 0) -> str | None:
        """Which backend a (virtual) sequence number is bound to."""
        return self._calendar.get((flow_id, seq // self.window))

    def windows_bound_to(self, backend: str) -> int:
        """How many calendar entries currently point at a backend."""
        return sum(1 for address in self._calendar.values() if address == backend)
