"""An EJ-FAT-style in-network load balancer.

The pilot's 3-mode setup is "inspired by EJ-FAT" (§5.3) — the
ESnet/JLab FPGA Accelerated Transport load balancer, which spreads a
DAQ stream over a farm of processing nodes by *event tick*, keeping
every fragment of one event on the same node.

:class:`LoadBalancerProgram` reproduces that behaviour on an
FPGA-class element: sequenced DATA packets are grouped into fixed-size
sequence windows (the "tick"); the first packet of a window binds the
window to a backend (least-loaded wins), and every later packet —
including retransmissions — follows the calendar, so event locality
survives loss recovery. Backends report fill levels through a control
callback (EJ-FAT's sync messages) and can be drained for maintenance;
bound windows keep flowing to a draining backend, new windows avoid it.

Header-only on the wire: steering is an ``ip.dst`` rewrite keyed on
the MMT seq field, well inside the P4 envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.features import Feature, MsgType
from ..core.seqspace import unwrap
from .element import ProgrammableElement
from .pipeline import Action, Metadata, PacketView, Table
from .programs import Program


class LoadBalancerError(RuntimeError):
    """Raised for balancer misconfiguration."""


@dataclass
class BackendState:
    """One processing node behind the balancer."""

    address: str
    #: Last reported fill level (0-100), EJ-FAT sync-message style.
    fill_pct: int = 0
    draining: bool = False
    windows_assigned: int = 0
    packets_steered: int = 0


class LoadBalancerProgram(Program):
    """Window-sticky, load-aware stream distribution."""

    def __init__(
        self,
        experiment_id: int,
        backends: list[str],
        window: int = 64,
        calendar_horizon: int = 4096,
    ) -> None:
        if not backends:
            raise LoadBalancerError("need at least one backend")
        if window <= 0:
            raise LoadBalancerError("window must be positive")
        self.experiment_id = experiment_id
        self.window = window
        self.calendar_horizon = calendar_horizon
        self.backends: dict[str, BackendState] = {
            address: BackendState(address=address) for address in backends
        }
        self._calendar: dict[int, str] = {}
        self._highest_tick = -1
        self._highest_seq = 0
        self.unsteerable = 0

    # -- control plane --------------------------------------------------------

    def report_load(self, backend: str, fill_pct: int) -> None:
        """Backend feedback (EJ-FAT sync): update its fill level."""
        state = self._require(backend)
        state.fill_pct = max(0, min(100, fill_pct))

    def drain(self, backend: str) -> None:
        """Stop assigning *new* windows to a backend."""
        self._require(backend).draining = True

    def undrain(self, backend: str) -> None:
        self._require(backend).draining = False

    def add_backend(self, address: str) -> None:
        if address in self.backends:
            raise LoadBalancerError(f"backend {address!r} already registered")
        self.backends[address] = BackendState(address=address)

    def _require(self, backend: str) -> BackendState:
        state = self.backends.get(backend)
        if state is None:
            raise LoadBalancerError(f"unknown backend {backend!r}")
        return state

    # -- installation -----------------------------------------------------------

    def install(self, element: ProgrammableElement) -> None:
        table = Table(
            "ejfat_balance", keys=[],
            default_action=Action("balance", self._action),
        )
        element.pipeline.add_table(table)

    # -- dataplane --------------------------------------------------------------

    def _action(self, view: PacketView, _meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if header.experiment_id != self.experiment_id:
            return
        if header.msg_type not in (MsgType.DATA, MsgType.RETX_DATA):
            return
        if not header.has(Feature.SEQUENCED):
            self.unsteerable += 1
            return
        seq = unwrap(header.seq, self._highest_seq)
        self._highest_seq = max(self._highest_seq, seq)
        tick = seq // self.window
        backend = self._calendar.get(tick)
        if backend is None:
            backend = self._assign(tick)
        state = self.backends[backend]
        state.packets_steered += 1
        if view.has_header("ip"):
            view.set("ip.dst", backend)

    def _assign(self, tick: int) -> str:
        candidates = [s for s in self.backends.values() if not s.draining]
        if not candidates:
            candidates = list(self.backends.values())  # all draining: degrade
        # Least-loaded: reported fill first, then assignment count.
        chosen = min(candidates, key=lambda s: (s.fill_pct, s.windows_assigned, s.address))
        self._calendar[tick] = chosen.address
        chosen.windows_assigned += 1
        self._highest_tick = max(self._highest_tick, tick)
        self._prune()
        return chosen.address

    def _prune(self) -> None:
        floor = self._highest_tick - self.calendar_horizon
        if floor <= 0 or len(self._calendar) <= self.calendar_horizon:
            return
        for tick in [t for t in self._calendar if t < floor]:
            del self._calendar[tick]

    # -- inspection ----------------------------------------------------------------

    def distribution(self) -> dict[str, int]:
        """Packets steered per backend."""
        return {address: s.packets_steered for address, s in self.backends.items()}

    def backend_for(self, seq: int) -> str | None:
        """Which backend a (virtual) sequence number is bound to."""
        return self._calendar.get(seq // self.window)
