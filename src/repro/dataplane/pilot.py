"""The pilot study testbed (Fig. 4), fully assembled.

Topology (100 GbE throughout, per the paper)::

    sensor --- DAQ switch --- DTN 1 --- [Alveo U280] --- Tofino2
                                                            |
                                        DTN 2 --- [Alveo U55C]

- sensor → DTN 1: **mode 0** ("identify"), MMT directly over Ethernet
  (Req 1), unreliable;
- DTN 1 → DTN 2: **mode 1** ("age-recover") — the U280 smartNIC
  transitions the stream, assigns sequence numbers from a register,
  mirrors packets into its HBM retransmission buffer, and stamps itself
  as the nearest buffer; the Tofino2 updates ages and re-stamps the
  nearest buffer;
- at the U55C: **mode 2** ("deliver-check") — a delivery deadline is
  added; DTN 2 checks timeliness on arrival and NAKs any gaps straight
  to the U280 (never to the sensor).

The WAN leg (Tofino2 ↔ U55C) takes configurable delay and loss so the
same build serves both the physical-testbed shape (local, lossless)
and design exploration (long RTT, corruption loss), mirroring how the
authors kept a FABRIC variant alongside the physical pilot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.endpoint import MmtReceiver, MmtSender, MmtStack, ReceiverConfig
from ..core.header import make_experiment_id
from ..core.modes import ModeRegistry, pilot_registry
from ..core.retransmit import BufferDirectory, RetransmitBuffer
from ..netsim.engine import Simulator
from ..netsim.packet import Packet
from ..netsim.queues import DrrScheduler
from ..netsim.topology import Topology
from ..netsim.units import MICROSECOND, MILLISECOND, gbps
from ..telemetry import (
    IntDomain,
    MetricsRegistry,
    scrape_element,
    scrape_flow_counters,
    scrape_flow_residency,
    scrape_receiver_flows,
    scrape_simulator,
    scrape_stack,
    scrape_topology,
)
from .alveo import AlveoNic
from .programs import (
    AgeUpdateProgram,
    BufferTapProgram,
    ModeTransitionProgram,
    NearestBufferProgram,
    TransitionRule,
)
from .tofino import TofinoSwitch

#: Experiment number used by the pilot streams (arbitrary but fixed).
PILOT_EXPERIMENT = 42

#: Path positions along the Fig. 4 pilot, sensor → DTN 2.
SENSOR_POSITION = 0
DAQ_SWITCH_POSITION = 1
DTN1_POSITION = 2
U280_POSITION = 3
TOFINO_POSITION = 4
U55C_POSITION = 5
DTN2_POSITION = 6


@dataclass
class PilotConfig:
    """Parameters for a pilot build."""

    link_rate_bps: int = gbps(100)
    #: One-way delay of the WAN leg (Tofino2 ↔ U55C).
    wan_delay_ns: int = 10 * MILLISECOND
    #: Random loss on the WAN leg (corruption-style loss, §4).
    wan_loss_rate: float = 0.0
    #: DAQ-network leg one-way delay.
    daq_delay_ns: int = 5 * MICROSECOND
    #: Age budget stamped when mode 1 activates.
    age_budget_ns: int = 50 * MILLISECOND
    #: Deadline offset stamped when mode 2 activates at the U55C.
    deadline_offset_ns: int = 5 * MILLISECOND
    #: Retransmission buffer capacity carved from U280 HBM.
    buffer_bytes: int = 512 * 1024 * 1024
    mtu_bytes: int = 9000
    slice_id: int = 0
    #: Receiver tuning (reorder wait before NAK, retries).
    receiver: ReceiverConfig = field(default_factory=ReceiverConfig)
    #: Enable the telemetry subsystem: INT postcards along
    #: U280 → Tofino2 → U55C with the sink at DTN 2, plus end-of-run
    #: scraping of every component into a MetricsRegistry.
    telemetry: bool = False
    #: Mark every Nth data packet at the INT source (1 = all).
    int_sample_every: int = 1
    #: Replace the pre-supposed static buffer wiring with a live
    #: :class:`~repro.core.retransmit.BufferDirectory`: elements stamp
    #: the nearest *live* buffer per packet, so marking a buffer down
    #: re-stamps flows to the next-nearest live one (failover), and a
    #: reliable sender with no live buffer degrades its mode. Chaos
    #: scenarios build the pilot this way.
    use_directory: bool = False
    #: Start the DTN 1 → DTN 2 leg in age-recover *at DTN 1* (sequence
    #: numbers assigned by the host stack) instead of upgrading at the
    #: U280. Required for buffer failover: it gives the stream a second
    #: recovery point upstream of the U280.
    reliable_from_dtn1: bool = False
    #: With ``reliable_from_dtn1``: also cache at DTN 1's host buffer
    #: and register it in the directory as the failover buffer.
    failover_buffer: bool = False
    #: Capacity of DTN 1's host-side failover buffer.
    dtn1_buffer_bytes: int = 256 * 1024 * 1024
    #: Enable the causal tracer: a :class:`~repro.trace.Tracer` is
    #: installed on the engine, every port/link, the programmable
    #: elements, the endpoint stacks, and the retransmission buffers.
    #: Pilot *results* are unaffected — tracing observes, never steers.
    trace: bool = False
    #: Flight-recorder ring capacity (None = retain every span).
    trace_capacity: int | None = None
    #: Sampling period for the on-clock observability sampler (None or
    #: 0 = no sampler object at all — the zero-overhead default; the
    #: engine's event sequence is byte-identical to a sampler-less
    #: build except for the sampler's own ticks).
    sample_every_ns: int | None = None
    #: Number of concurrent flows sharing the pilot path. With 1 (the
    #: default) the build is exactly the historical single-flow pilot:
    #: no FLOW_ID extension on the wire, one sender per hop, FIFO relay
    #: at DTN 1. With N > 1, every flow gets its own tagged sender pair
    #: (sensor and DTN 1), per-flow receiver state isolates recovery,
    #: and DTN 1's relay serves its shared uplink with deficit round
    #: robin so no elephant starves the others.
    flows: int = 1


@dataclass
class PilotReport:
    """Everything a pilot run measured."""

    messages_sent: int
    dtn1_relayed: int
    delivered: int
    duplicates: int
    naks_sent: int
    naks_served: int
    retransmissions: int
    unrecovered: int
    aged_packets: int
    deadline_ok: int
    deadline_misses: int
    mode_transitions_u280: int
    mode_transitions_u55c: int
    age_updates_tofino: int
    buffer_occupancy: float
    delivery_latencies_ns: list[int]
    #: Per-flow breakdown (multi-flow builds only; empty for flows=1):
    #: ``flow_id → {sent, relayed, delivered, bytes_delivered,
    #: naks_sent, unrecovered, retransmissions, first_delivery_ns,
    #: last_delivery_ns}``.
    per_flow: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.delivered >= self.messages_sent and self.unrecovered == 0


class PilotTestbed:
    """A ready-to-run build of the Fig. 4 pilot."""

    def __init__(
        self,
        sim: Simulator | None = None,
        config: PilotConfig | None = None,
        registry: ModeRegistry | None = None,
    ) -> None:
        self.sim = sim or Simulator(seed=42)
        self.config = config or PilotConfig()
        self.registry = registry or pilot_registry()
        self.experiment_id = make_experiment_id(PILOT_EXPERIMENT, self.config.slice_id)
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        topo = Topology(self.sim)
        self.topology = topo

        self.sensor = topo.add_host("sensor", ip="10.10.0.2")
        self.daq_switch = topo.add_switch("daq-switch")
        self.dtn1 = topo.add_host("dtn1", ip="10.10.0.10")
        self.u280 = topo.add(
            AlveoNic.u280(self.sim, "alveo-u280", mac=topo.allocate_mac(), ip="10.20.0.2")
        )
        self.tofino = topo.add(
            TofinoSwitch(self.sim, "tofino2", mac=topo.allocate_mac(), ip="10.20.0.1")
        )
        self.u55c = topo.add(
            AlveoNic.u55c(self.sim, "alveo-u55c", mac=topo.allocate_mac(), ip="10.30.0.2")
        )
        self.dtn2 = topo.add_host("dtn2", ip="10.30.0.10")

        rate = cfg.link_rate_bps
        short = 1 * MICROSECOND
        topo.connect(self.sensor, self.daq_switch, rate, cfg.daq_delay_ns, cfg.mtu_bytes)
        topo.connect(self.daq_switch, self.dtn1, rate, cfg.daq_delay_ns, cfg.mtu_bytes)
        topo.connect(self.dtn1, self.u280, rate, short, cfg.mtu_bytes)
        topo.connect(self.u280, self.tofino, rate, short, cfg.mtu_bytes)
        self.wan_link = topo.connect(
            self.tofino,
            self.u55c,
            rate,
            cfg.wan_delay_ns,
            cfg.mtu_bytes,
            loss_rate=cfg.wan_loss_rate,
        )
        topo.connect(self.u55c, self.dtn2, rate, short, cfg.mtu_bytes)
        topo.install_routes()

        # --- programmable elements -----------------------------------------
        self.buffer = self.u280.attach_buffer(cfg.buffer_bytes)
        self.directory: BufferDirectory | None = None
        if cfg.use_directory:
            self.directory = BufferDirectory()
            self.directory.register(
                self.u280.ip, U280_POSITION, experiments={self.experiment_id}
            )
        self.u280_transition = ModeTransitionProgram(
            self.registry,
            [
                TransitionRule(
                    from_config_id=self.registry.by_name("identify").config_id,
                    to_mode="age-recover",
                    buffer_addr=self.u280.ip,
                    age_budget_ns=cfg.age_budget_ns,
                )
            ],
            directory=self.directory,
            path_position=U280_POSITION,
        )
        self.u280_transition.install(self.u280)
        BufferTapProgram(buffer_addr=self.u280.ip).install(self.u280)
        self.u280_age = AgeUpdateProgram()
        self.u280_age.install(self.u280)

        self.tofino_age = AgeUpdateProgram()
        self.tofino_age.install(self.tofino)
        if self.directory is not None:
            # No static fallback: a dead directory answer must NOT be
            # papered over by re-stamping the (possibly dead) U280.
            self.tofino_nearest = NearestBufferProgram(
                directory=self.directory, path_position=TOFINO_POSITION
            )
        else:
            self.tofino_nearest = NearestBufferProgram(buffer_addr=self.u280.ip)
        self.tofino_nearest.install(self.tofino)

        self.u55c_transition = ModeTransitionProgram(
            self.registry,
            [
                TransitionRule(
                    from_config_id=self.registry.by_name("age-recover").config_id,
                    to_mode="deliver-check",
                    deadline_offset_ns=cfg.deadline_offset_ns,
                    notify_addr=self.dtn1.ip,
                )
            ],
        )
        self.u55c_transition.install(self.u55c)
        self.u55c_age = AgeUpdateProgram()
        self.u55c_age.install(self.u55c)

        # --- endpoints --------------------------------------------------------
        self.sensor_stack = MmtStack(self.sensor, self.registry)
        self.dtn1_stack = MmtStack(self.dtn1, self.registry)
        self.dtn2_stack = MmtStack(self.dtn2, self.registry)

        if cfg.flows < 1:
            raise ValueError(f"flows must be >= 1, got {cfg.flows}")
        self.messages_sent = 0
        self.dtn1_relayed = 0
        self.delivered_messages: list[tuple[int, int]] = []  # (time, payload size)
        self.messages_sent_by_flow: dict[int, int] = {f: 0 for f in range(cfg.flows)}
        self.dtn1_relayed_by_flow: dict[int, int] = {f: 0 for f in range(cfg.flows)}
        #: flow_id → [(delivery time, payload size)] at DTN 2.
        self.delivered_by_flow: dict[int, list[tuple[int, int]]] = {
            f: [] for f in range(cfg.flows)
        }

        # Single-flow builds stay untagged (no FLOW_ID extension, wire
        # bytes identical to every earlier pilot); multi-flow builds tag
        # every sender, flow 0 included, so in-path flow counters and
        # per-flow recovery state see all of them.
        tagged = cfg.flows > 1

        def flow_kwargs(fid: int) -> dict:
            if not tagged:
                return {"flow": "pilot"}
            return {"flow": f"pilot-f{fid}", "flow_id": fid}

        self.sensor_senders: list[MmtSender] = [
            self.sensor_stack.create_sender(
                experiment_id=self.experiment_id,
                mode="identify",
                dst_mac=self.dtn1.mac,
                l2_port=next(iter(self.sensor.ports)),
                **flow_kwargs(fid),
            )
            for fid in range(cfg.flows)
        ]
        self.sensor_sender: MmtSender = self.sensor_senders[0]
        self.dtn1_buffer: RetransmitBuffer | None = None
        if cfg.reliable_from_dtn1 and cfg.failover_buffer:
            self.dtn1_buffer = self.dtn1_stack.attach_buffer(cfg.dtn1_buffer_bytes)
            if self.directory is not None:
                self.directory.register(
                    self.dtn1.ip, DTN1_POSITION, experiments={self.experiment_id}
                )
        if cfg.reliable_from_dtn1:
            self.dtn1_senders: list[MmtSender] = [
                self.dtn1_stack.create_sender(
                    experiment_id=self.experiment_id,
                    mode="age-recover",
                    dst_ip=self.dtn2.ip,
                    age_budget_ns=cfg.age_budget_ns,
                    buffer_local=self.dtn1_buffer is not None,
                    directory=self.directory,
                    path_position=DTN1_POSITION,
                    degraded_mode="identify",
                    **flow_kwargs(fid),
                )
                for fid in range(cfg.flows)
            ]
        else:
            self.dtn1_senders = [
                self.dtn1_stack.create_sender(
                    experiment_id=self.experiment_id,
                    mode="identify",
                    dst_ip=self.dtn2.ip,
                    **flow_kwargs(fid),
                )
                for fid in range(cfg.flows)
            ]
        self.dtn1_sender: MmtSender = self.dtn1_senders[0]

        # Multi-flow relay fairness: DTN 1's uplink (and the U280 buffer
        # behind it) is the shared resource; a DRR scheduler decides the
        # re-origination order so one hot flow cannot monopolize it.
        self.relay_drr: DrrScheduler | None = (
            DrrScheduler(quantum_bytes=cfg.mtu_bytes) if tagged else None
        )
        self._relay_drain_pending = False
        self.dtn1_receiver: MmtReceiver = self.dtn1_stack.bind_receiver(
            PILOT_EXPERIMENT, on_message=self._relay_at_dtn1
        )
        self.dtn2_receiver: MmtReceiver = self.dtn2_stack.bind_receiver(
            PILOT_EXPERIMENT, on_message=self._deliver_at_dtn2, config=cfg.receiver
        )

        # --- telemetry ------------------------------------------------------
        self.metrics: MetricsRegistry | None = None
        self.int_domain: IntDomain | None = None
        if cfg.telemetry:
            self.metrics = MetricsRegistry()
            self.int_domain = IntDomain()
            self.int_domain.enroll(
                self.u280, source=True, sample_every=cfg.int_sample_every
            )
            self.int_domain.enroll(self.tofino)
            self.int_domain.enroll(self.u55c)
            self.dtn2_stack.int_sink = self.int_domain.make_sink(self.metrics)

        # --- tracing --------------------------------------------------------
        self.tracer = None
        if cfg.trace:
            from ..trace import Tracer

            self.attach_tracer(Tracer(self.sim, capacity=cfg.trace_capacity))

        # --- sampling -------------------------------------------------------
        self.sampler = None
        if cfg.sample_every_ns:
            from ..obs import Sampler, watch_pilot

            self.sampler = Sampler(self.sim, every_ns=cfg.sample_every_ns)
            watch_pilot(self.sampler, self)
            self.sampler.arm()

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`~repro.trace.Tracer` on every hook point.

        Idempotent in effect (re-attaching replaces the previous tracer
        everywhere), so tests can swap tracers between runs.
        """
        self.tracer = tracer
        self.sim.tracer = tracer
        for node in self.topology.nodes.values():
            for port in node.ports.values():
                port.tracer = tracer
        for link in self.topology.links:
            link.tracer = tracer
        for element in (self.u280, self.tofino, self.u55c):
            element.tracer = tracer
        for stack in (self.sensor_stack, self.dtn1_stack, self.dtn2_stack):
            stack.tracer = tracer
        self.buffer.tracer = tracer
        if self.dtn1_buffer is not None:
            self.dtn1_buffer.tracer = tracer

    # -- dataflow callbacks ------------------------------------------------------

    def _relay_at_dtn1(self, packet: Packet, header) -> None:
        """DTN 1's store-and-forward: re-originate toward DTN 2.

        The original send timestamp rides along so delivery latency is
        measured sensor → DTN 2 end-to-end. Multi-flow builds queue the
        relay through a DRR scheduler instead of forwarding inline, so
        bursts arriving back-to-back from one flow cannot starve the
        shared uplink.
        """
        self.dtn1_relayed += 1
        fid = header.flow_id or 0
        self.dtn1_relayed_by_flow[fid] = self.dtn1_relayed_by_flow.get(fid, 0) + 1
        meta = {"sent_at": packet.meta.get("sent_at", self.sim.now)}
        if self.relay_drr is None:
            self.dtn1_sender.send(packet.payload_size, payload=packet.payload, meta=meta)
            return
        self.relay_drr.enqueue(
            fid, (packet.payload_size, packet.payload, meta), packet.size_bytes
        )
        if not self._relay_drain_pending:
            self._relay_drain_pending = True
            self.sim.schedule(0, self._drain_relay)

    def _drain_relay(self) -> None:
        """Serve everything queued at DTN 1 in deficit-round-robin order."""
        assert self.relay_drr is not None
        self._relay_drain_pending = False
        while True:
            served = self.relay_drr.dequeue()
            if served is None:
                return
            fid, (payload_size, payload, meta) = served
            self.dtn1_senders[fid].send(payload_size, payload=payload, meta=meta)

    def _deliver_at_dtn2(self, packet: Packet, header) -> None:
        self.delivered_messages.append((self.sim.now, packet.payload_size))
        fid = header.flow_id or 0
        self.delivered_by_flow.setdefault(fid, []).append(
            (self.sim.now, packet.payload_size)
        )

    # -- driving ---------------------------------------------------------------------

    def send_message(
        self, payload_size: int = 8000, flow: int = 0, payload: bytes | None = None
    ) -> None:
        """Emit one DAQ message from the sensor right now."""
        self.sensor_senders[flow].send(payload_size, payload=payload)
        self.messages_sent += 1
        self.messages_sent_by_flow[flow] = self.messages_sent_by_flow.get(flow, 0) + 1

    def send_stream(
        self,
        count: int,
        payload_size: int = 8000,
        interval_ns: int = 1_000,
        flow: int = 0,
    ) -> None:
        """Schedule a steady stream of ``count`` messages from the sensor."""
        for i in range(count):
            self.sim.schedule(i * interval_ns, self.send_message, payload_size, flow)

    def run(self, extra_ns: int = 0, reconcile: bool = True) -> PilotReport:
        """Run to quiescence (plus ``extra_ns``), reconcile, and report."""
        self.sim.run(until_ns=self.sim.now + extra_ns if extra_ns else None)
        self.sim.run()
        if reconcile:
            # End-of-run bookkeeping: DTN 2 knows how many messages DTN 1
            # forwarded (run metadata) and NAKs anything still missing.
            # Multi-flow runs reconcile per flow: each flow numbers its
            # own sequence space, so "expected" is per-flow relay counts.
            if self.config.flows > 1:
                for fid in range(self.config.flows):
                    self.dtn2_receiver.request_missing(
                        self.experiment_id,
                        self.dtn1_relayed_by_flow.get(fid, 0),
                        flow_id=fid,
                    )
            else:
                self.dtn2_receiver.request_missing(self.experiment_id, self.dtn1_relayed)
            self.sim.run()
        return self.report()

    def collect_telemetry(self) -> MetricsRegistry:
        """Scrape the whole testbed into the registry (end of run).

        The INT sink has been feeding the registry live; this adds the
        pull side — engine, topology, elements, and endpoint stacks —
        and returns the registry ready for export.
        """
        if self.metrics is None:
            raise RuntimeError("telemetry disabled; build with PilotConfig(telemetry=True)")
        scrape_simulator(self.sim, self.metrics)
        scrape_topology(self.topology, self.metrics, now_ns=self.sim.now)
        for element in (self.u280, self.tofino, self.u55c):
            scrape_element(element, self.metrics)
        for stack in (self.sensor_stack, self.dtn1_stack, self.dtn2_stack):
            scrape_stack(stack, self.metrics)
        if self.config.flows > 1:
            scrape_receiver_flows(self.dtn2_receiver, self.metrics, host=self.dtn2.name)
            scrape_flow_counters(
                self.tofino.flow_counters(), self.metrics, element=self.tofino.name
            )
            scrape_flow_residency(
                self.u280.hbm_flow_occupancy(), self.metrics, host=self.u280.name
            )
        return self.metrics

    def flow_report(self) -> dict[int, dict[str, int]]:
        """Per-flow accounting: sent/relayed/delivered plus recovery
        counters from DTN 2's per-flow state and the completion window
        (first/last delivery times) fairness analysis needs."""
        summary = self.dtn2_receiver.flow_summary()
        report: dict[int, dict[str, int]] = {}
        for fid in range(self.config.flows):
            rx = summary.get((self.experiment_id, fid), {})
            deliveries = self.delivered_by_flow.get(fid, [])
            report[fid] = {
                "sent": self.messages_sent_by_flow.get(fid, 0),
                "relayed": self.dtn1_relayed_by_flow.get(fid, 0),
                "delivered": rx.get("delivered", 0),
                "bytes_delivered": rx.get("bytes_delivered", 0),
                "naks_sent": rx.get("naks_sent", 0),
                "unrecovered": rx.get("unrecovered", 0),
                "retransmissions": rx.get("retransmissions", 0),
                "first_delivery_ns": deliveries[0][0] if deliveries else 0,
                "last_delivery_ns": deliveries[-1][0] if deliveries else 0,
            }
        return report

    def report(self) -> PilotReport:
        rx = self.dtn2_receiver.stats
        return PilotReport(
            messages_sent=self.messages_sent,
            dtn1_relayed=self.dtn1_relayed,
            delivered=rx.messages_delivered,
            duplicates=rx.duplicates,
            naks_sent=rx.naks_sent,
            naks_served=self.u280.stats.naks_served,
            retransmissions=rx.retransmissions_received,
            unrecovered=rx.unrecovered,
            aged_packets=rx.aged_packets,
            deadline_ok=rx.deadline_ok,
            deadline_misses=rx.deadline_misses,
            mode_transitions_u280=self.u280_transition.transitions_applied,
            mode_transitions_u55c=self.u55c_transition.transitions_applied,
            age_updates_tofino=self.tofino_age.updates,
            buffer_occupancy=self.buffer.occupancy,
            delivery_latencies_ns=[lat for _t, lat in self.dtn2_receiver.delivery_log],
            per_flow=self.flow_report() if self.config.flows > 1 else {},
        )
