"""Programmable network elements: pipeline hosting plus forwarding.

A :class:`ProgrammableElement` is a node that runs a
:class:`~repro.dataplane.pipeline.Pipeline` over MMT traffic before
forwarding. It can additionally host a retransmission buffer, in which
case NAKs addressed to the element are served *from the element itself*
("programmable network hardware across the different networks reference
retransmission buffers", §5.1).

Forwarding: IP packets follow the element's routing table (installed by
:meth:`repro.netsim.topology.Topology.install_routes`); non-IP frames
are L2-switched with MAC learning — DAQ networks run MMT directly over
Ethernet (Req 1), so elements inside the DAQ segment forward by MAC.
Non-MMT traffic (e.g. TCP cross-traffic) bypasses the pipeline and is
forwarded normally, as a real switch profile would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.control import NakPayload
from ..core.features import Feature, MsgType
from ..core.header import MmtHeader
from ..core.retransmit import NakForwardGuard, RetransmitBuffer
from ..netsim.engine import Simulator
from ..netsim.headers import EthernetHeader, EtherType, IpProto, Ipv4Header
from ..netsim.link import Port
from ..netsim.node import Node
from ..netsim.packet import Packet
from ..netsim.switch import RoutingTable
from ..telemetry.inband import IntHeader, IntPostcard
from .pipeline import Metadata, Pipeline


@dataclass
class ElementStats:
    """Counters for one programmable element."""

    mmt_processed: int = 0
    passthrough: int = 0
    pipeline_drops: int = 0
    clones_made: int = 0
    control_generated: int = 0
    mirrored_to_buffer: int = 0
    naks_served: int = 0
    nak_packets_resent: int = 0
    dropped_no_route: int = 0
    int_packets_marked: int = 0
    int_postcards_pushed: int = 0
    int_stack_full: int = 0
    #: Crash/restart bookkeeping (fault injection): packets that arrived
    #: while the element was down are dropped and counted.
    crashes: int = 0
    restarts: int = 0
    dropped_failed: int = 0
    nak_forwards_suppressed: int = 0
    #: Trains forwarded whole because no pipeline table cared about any
    #: feature bit present in the burst (see ``receive_train``).
    train_fastforwards: int = 0


class ProgrammableElement(Node):
    """Base class for Tofino-like switches and Alveo-like smartNICs."""

    BROADCAST = "ff:ff:ff:ff:ff:ff"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        ip: str | None = None,
        stages: int = 20,
    ) -> None:
        super().__init__(sim, name)
        self.mac = mac
        self.ip = ip
        self.pipeline = Pipeline(name, stages=stages)
        self.routes = RoutingTable()
        self.buffer: RetransmitBuffer | None = None
        #: NAKs this element's buffer cannot serve are forwarded here.
        self.nak_fallback_addr: str | None = None
        #: Set by SegmentRecoveryProgram.install(); receives repairs
        #: (RETX_DATA addressed to this element) for re-forwarding.
        self.segment_recovery = None
        self.stats = ElementStats()
        #: In-band telemetry (INT): set by IntDomain.enroll(). When
        #: ``int_hop_id`` is set this element appends a postcard to every
        #: marked MMT data packet; when additionally ``int_source`` is
        #: set it marks every ``int_sample_every``-th unmarked one.
        self.int_hop_id: int | None = None
        self.int_source = False
        self.int_sample_every = 1
        self.int_max_hops = 8
        self._int_sample_counter = 0
        self._mac_table: dict[str, Port] = {}
        #: Identical unmet-NAK forwards are capped (anti-loop guard,
        #: mirroring MmtStack's behaviour).
        self._nak_forward_guard = NakForwardGuard()
        #: Causal tracer (repro.trace.Tracer) or None; records per-packet
        #: ingress/egress/drop plus the NAK-serving chain.
        self.tracer = None
        #: True while crashed: every arriving packet is dropped (and
        #: counted) until :meth:`restart` brings the element back.
        self.failed = False

    # -- configuration --------------------------------------------------------

    def add_route(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        if port_name not in self.ports:
            raise ValueError(f"{self.name} has no port {port_name!r}")
        self.routes.add(prefix, port_name, next_hop_mac)

    def attach_buffer(self, capacity_bytes: int) -> RetransmitBuffer:
        """Host a retransmission buffer; requires the element to have an IP."""
        if self.ip is None:
            raise ValueError(f"{self.name} needs an IP to host a buffer")
        if self.buffer is not None:
            raise ValueError(f"{self.name} already hosts a buffer")
        self.buffer = RetransmitBuffer(capacity_bytes, address=self.ip)
        return self.buffer

    # -- failure model --------------------------------------------------------

    def crash(self) -> None:
        """Take the element down: all arriving traffic is dropped.

        Models the dataplane component dying (power, firmware, bitstream
        reload). Queued egress frames already serializing still drain —
        only *processing* stops, like a wedged pipeline.
        """
        if self.failed:
            return
        self.failed = True
        self.stats.crashes += 1

    def restart(self) -> None:
        """Bring a crashed element back with cold state.

        Restarts clear everything stateful, as a reloaded FPGA/ASIC
        image would: pipeline registers (sequence counters, rate-limit
        timestamps), the learned MAC table, the NAK anti-loop guard, and
        the hosted retransmission buffer's *contents* (the buffer comes
        back alive but empty — restarts never recover cached packets).
        """
        if not self.failed:
            return
        self.failed = False
        self.stats.restarts += 1
        self.pipeline.reset_registers()
        self._mac_table.clear()
        self._nak_forward_guard = NakForwardGuard()
        if self.buffer is not None:
            self.buffer.clear()
            self.buffer.restore()

    # -- ingress ------------------------------------------------------------------

    def receive(self, packet: Packet, port: Port) -> None:
        if self.failed:
            self.stats.dropped_failed += 1
            if self.tracer is not None:
                self.tracer.packet_event(
                    "element.drop", self.name, packet, reason="failed"
                )
            return
        eth = packet.find(EthernetHeader)
        if eth is not None:
            self._mac_table.setdefault(eth.src, port)
            self._mac_table[eth.src] = port
        mmt = packet.find(MmtHeader)
        if mmt is not None and self._addressed_to_me(packet):
            self._handle_local(packet, mmt)
            return
        if mmt is None:
            self.stats.passthrough += 1
            self._forward(packet, ingress=port)
            return
        self.process_mmt(packet, ingress=port)

    def receive_train(self, packets: list[Packet], port: Port) -> None:
        """Train ingress with an optional whole-train fast-forward.

        If every packet in the burst is plain MMT DATA not addressed to
        this element, and no installed table declares interest in any
        feature bit present in the burst
        (:meth:`~repro.dataplane.pipeline.Pipeline.can_fast_forward`),
        the pipeline is provably a no-op for the whole train: skip it
        and forward the burst coalesced. TTL decrement and L2 rewrite
        still happen per packet, so the bytes on the wire are identical
        to the serial path. Any packet that disqualifies the train —
        control traffic, local delivery, a feature some table acts on —
        or an installed tracer/INT hop drops the whole burst back to
        per-packet :meth:`receive`.
        """
        if self.failed:
            self.stats.dropped_failed += len(packets)
            return
        if self.tracer is not None or self.int_hop_id is not None:
            for packet in packets:
                self.receive(packet, port)
            return
        bits = 0
        fastable = True
        mac_table = self._mac_table
        for packet in packets:
            eth = packet.find(EthernetHeader)
            if eth is not None:
                mac_table[eth.src] = port
            mmt = packet.find(MmtHeader)
            if (
                mmt is None
                or mmt.msg_type is not MsgType.DATA
                or self._addressed_to_me(packet)
            ):
                fastable = False
                break
            bits |= int(mmt.features)
        if not fastable or not self.pipeline.can_fast_forward(bits):
            for packet in packets:
                self.receive(packet, port)
            return
        self.stats.mmt_processed += len(packets)
        self.stats.train_fastforwards += 1
        self._forward_train(packets, ingress=port)

    def _forward_train(self, packets: list[Packet], ingress: Port | None) -> None:
        """Forward a fast-forwarded burst, keeping it coalesced.

        Routes are looked up once per distinct destination; packets
        sharing an egress port leave as one train (order preserved), so
        the O(1)-events property survives the hop. Non-IP frames fall
        back to per-packet L2 forwarding (flooding may fan out).
        """
        bursts: dict[str, list[Packet]] = {}
        lookup = self.routes.lookup
        route_cache: dict[str, object] = {}
        for packet in packets:
            ip = packet.find(Ipv4Header)
            if ip is None:
                self._forward(packet, ingress=ingress)
                continue
            try:
                route = route_cache[ip.dst]
            except KeyError:
                route = route_cache[ip.dst] = lookup(ip.dst)
            if route is None:
                self.stats.dropped_no_route += 1
                continue
            if ip.ttl <= 1:
                self.stats.dropped_no_route += 1
                continue
            ip.ttl -= 1
            eth = packet.find(EthernetHeader)
            if eth is not None:
                eth.src = self.mac
                eth.dst = route.next_hop_mac
            bursts.setdefault(route.port_name, []).append(packet)
        for port_name, burst in bursts.items():
            self.ports[port_name].send_train(burst)

    def process_mmt(self, packet: Packet, ingress: Port | None = None) -> None:
        """Run the pipeline over an MMT packet and act on the verdict.

        Also the re-injection point: locally reconstructed packets
        (e.g. segment repairs) enter here so every downstream program —
        steering, duplication, taps — applies to them too.
        """
        mmt = packet.require(MmtHeader)
        self.stats.mmt_processed += 1
        meta = Metadata(
            ingress_port=ingress.name if ingress is not None else "",
            now_ns=self.sim.now,
        )
        queue_pct = self._max_queue_occupancy_pct()
        meta.scratch["queue_occupancy_pct"] = queue_pct
        tracer = self.tracer
        if tracer is not None:
            # Pre-pipeline view: at a sequencing element (U280) the seq
            # is still unassigned here, so ingress may be identity-less.
            tracer.emit(
                "element.ingress", self.name,
                mmt.experiment_id, mmt.flow_id or 0, mmt.seq,
                msg=mmt.msg_type.name, config=mmt.config_id, queue_pct=queue_pct,
            )
        self.pipeline.process(packet, meta)
        if meta.drop:
            self.stats.pipeline_drops += 1
            if tracer is not None:
                tracer.emit(
                    "element.drop", self.name,
                    mmt.experiment_id, mmt.flow_id or 0, mmt.seq,
                    msg=mmt.msg_type.name, reason="pipeline",
                )
            return
        if meta.mirror_to_buffer and self.buffer is not None and mmt.seq is not None:
            self.buffer.store(mmt.experiment_id, mmt.seq, packet, mmt.flow_id or 0)
            self.stats.mirrored_to_buffer += 1
        if self.int_hop_id is not None:
            self._int_push(packet, mmt)
        if tracer is not None:
            # Post-pipeline view: seq/config are final here, and the
            # timestamp equals any INT postcard this hop just pushed —
            # the exact record the --verify-int cross-check anchors on.
            tracer.emit(
                "element.egress", self.name,
                mmt.experiment_id, mmt.flow_id or 0, mmt.seq,
                msg=mmt.msg_type.name, config=mmt.config_id, queue_pct=queue_pct,
            )
        for dst_ip, header, payload in meta.generated:
            self.stats.control_generated += 1
            self._send_mmt(dst_ip, header, payload_size=len(payload), payload=payload)
        for clone_dst in meta.clones:
            self._forward_clone(packet, clone_dst)
        self._forward(packet, ingress=ingress, egress_spec=meta.egress_spec)

    def _int_push(self, packet: Packet, mmt: MmtHeader) -> None:
        """Append this hop's INT postcard (marking at source elements).

        Runs after the pipeline (postcards record post-rewrite mode
        bits) and after the buffer mirror, so retransmitted copies are
        served without a stale telemetry stack.
        """
        if mmt.msg_type not in (MsgType.DATA, MsgType.RETX_DATA):
            return
        header = packet.find(IntHeader)
        if header is None:
            if not self.int_source:
                return
            self._int_sample_counter += 1
            if self._int_sample_counter % self.int_sample_every:
                return
            header = IntHeader(max_hops=self.int_max_hops)
            # Innermost (after MMT): forwarding never inspects it, but
            # its bytes still count toward serialization time and MTU.
            packet.headers.append(header)
            self.stats.int_packets_marked += 1
        postcard = IntPostcard(
            hop_id=self.int_hop_id,
            timestamp_ns=self.sim.now,
            queue_depth_pct=self._max_queue_occupancy_pct(),
            config_id=mmt.config_id,
            seq=mmt.seq or 0,
            flow_id=mmt.flow_id or 0,
        )
        if header.push(postcard):
            self.stats.int_postcards_pushed += 1
        else:
            self.stats.int_stack_full += 1

    def _addressed_to_me(self, packet: Packet) -> bool:
        if self.ip is None:
            return False
        ip = packet.find(Ipv4Header)
        return ip is not None and ip.dst == self.ip

    def _max_queue_occupancy_pct(self) -> int:
        worst = 0.0
        for port in self.ports.values():
            worst = max(worst, port.queue.occupancy)
        return int(worst * 100)

    # -- local termination: serving NAKs from the element's buffer --------------

    def _handle_local(self, packet: Packet, mmt: MmtHeader) -> None:
        if mmt.msg_type == MsgType.RETX_DATA and self.segment_recovery is not None:
            self.segment_recovery.on_repair(packet, mmt)
            return
        if mmt.msg_type != MsgType.NAK or self.buffer is None:
            return
        ip = packet.find(Ipv4Header)
        if ip is None or packet.payload is None:
            return
        nak = NakPayload.decode(packet.payload)
        flow_id = mmt.flow_id or 0
        recovered, unmet = self.buffer.serve_nak(mmt.experiment_id, nak, flow_id)
        self.stats.naks_served += 1
        for cached in recovered:
            if self.tracer is not None:
                self.tracer.packet_event(
                    "retx.send", self.name, cached, target=ip.src
                )
            self._resend(cached, requester=ip.src)
        if unmet and self.nak_fallback_addr:
            key = (
                mmt.experiment_id,
                flow_id,
                tuple((r.start, r.end) for r in unmet),
            )
            if not self._nak_forward_guard.allow(key):
                self.stats.nak_forwards_suppressed += 1
                return
            if self.tracer is not None:
                for unmet_range in unmet:
                    for seq in unmet_range:
                        self.tracer.emit(
                            "nak.forward", self.name,
                            mmt.experiment_id, flow_id, seq,
                            target=self.nak_fallback_addr,
                        )
            forward = NakPayload(ranges=list(unmet))
            header = MmtHeader(
                config_id=mmt.config_id,
                features=Feature.FLOW_ID if flow_id else Feature.NONE,
                msg_type=MsgType.NAK,
                experiment_id=mmt.experiment_id,
                flow_id=flow_id if flow_id else None,
            )
            self._send_mmt(
                self.nak_fallback_addr,
                header,
                payload_size=len(forward.encode()),
                payload=forward.encode(),
                src_override=ip.src,
            )

    def _resend(self, cached: Packet, requester: str) -> None:
        mmt = cached.find(MmtHeader)
        if mmt is None:
            return
        header = mmt.copy()
        header.msg_type = MsgType.RETX_DATA
        self.stats.nak_packets_resent += 1
        self._send_mmt(
            requester,
            header,
            payload_size=cached.payload_size,
            payload=cached.payload,
            meta={"flow": cached.meta.get("flow", "retx"), "retx": True},
            extra_meta=dict(cached.meta),
        )

    def _send_mmt(
        self,
        dst_ip: str,
        header: MmtHeader,
        payload_size: int = 0,
        payload: bytes | None = None,
        meta: dict | None = None,
        extra_meta: dict | None = None,
        src_override: str | None = None,
    ) -> bool:
        route = self.routes.lookup(dst_ip)
        if route is None:
            self.stats.dropped_no_route += 1
            return False
        merged_meta = dict(extra_meta or {})
        merged_meta.update(meta or {})
        merged_meta.setdefault("sent_at", self.sim.now)
        packet = Packet(
            headers=[
                EthernetHeader(
                    src=self.mac, dst=route.next_hop_mac, ethertype=EtherType.IPV4
                ),
                Ipv4Header(src=src_override or self.ip, dst=dst_ip, proto=IpProto.MMT),
                header,
            ],
            payload_size=payload_size,
            payload=payload,
            meta=merged_meta,
        )
        return self.ports[route.port_name].send(packet)

    # -- forwarding ------------------------------------------------------------------

    def _forward_clone(self, packet: Packet, dst_ip: str) -> None:
        clone = packet.copy()
        ip = clone.find(Ipv4Header)
        if ip is None:
            return
        ip.dst = dst_ip
        clone.meta["clone_of"] = packet.packet_id
        self.stats.clones_made += 1
        self._forward(clone, ingress=None)

    def _forward(
        self, packet: Packet, ingress: Port | None, egress_spec: str = ""
    ) -> None:
        if egress_spec:
            self.ports[egress_spec].send(packet)
            return
        ip = packet.find(Ipv4Header)
        if ip is not None:
            route = self.routes.lookup(ip.dst)
            if route is None:
                self.stats.dropped_no_route += 1
                return
            if ip.ttl <= 1:
                self.stats.dropped_no_route += 1
                return
            ip.ttl -= 1
            eth = packet.find(EthernetHeader)
            if eth is not None:
                eth.src = self.mac
                eth.dst = route.next_hop_mac
            self.ports[route.port_name].send(packet)
            return
        # L2 forwarding (MMT directly over Ethernet inside the DAQ net).
        eth = packet.find(EthernetHeader)
        if eth is None:
            self.stats.dropped_no_route += 1
            return
        out = self._mac_table.get(eth.dst)
        if out is not None and out is not ingress:
            out.send(packet)
            return
        for port in self.ports.values():
            if port is not ingress and port.link is not None:
                port.send(packet.copy())
