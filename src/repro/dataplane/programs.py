"""The MMT dataplane programs (§5.3-§5.4), as installable pipelines.

Each program configures tables, actions, and registers on an element's
pipeline — the same division of labour as P4: the *program* defines
processing, the *control plane* (here: the program's constructor
arguments, supplied by a scenario builder) populates table entries.

Programs:

- :class:`ModeTransitionProgram` — rewrites headers between modes as
  flows cross segment boundaries; assigns sequence numbers from a
  register when SEQUENCED activates in-network ("Network elements add
  a sequence number to loss-recoverable streams", §5.4).
- :class:`AgeUpdateProgram` — updates ``age``/``aged`` (§5.4) and can
  raise the DSCP of age-sensitive traffic (priority as it travels,
  §5.3).
- :class:`BufferTapProgram` — mirrors sequenced data into the hosting
  element's retransmission buffer and names it as the nearest buffer.
- :class:`NearestBufferProgram` — refreshes ``buffer_addr`` only (for
  elements that point at a buffer hosted elsewhere, e.g. Tofino → DTN 1).
- :class:`DeadlineEnforceProgram` — sheds already-late packets and
  reports misses from within the network.
- :class:`DuplicationProgram` — in-network stream duplication to
  several downstream consumers (§5.1).
- :class:`BackpressureProgram` — relays congestion backpressure to the
  source when the local queue runs hot (§5.1), rate-limited through a
  register.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.aging import AGE_EPOCH_META
from ..core.control import BackpressurePayload, DeadlineMissPayload, ModeAnnouncePayload
from ..core.features import Feature, MsgType
from ..core.header import MmtHeader
from ..core.modes import Mode, ModeRegistry, TransitionContext, transition
from ..core.retransmit import BufferDirectory
from .element import ProgrammableElement
from .pipeline import Action, Metadata, MatchKind, PacketView, Table, flow_register_index


class Program:
    """Base: a program installs itself onto an element's pipeline."""

    def install(self, element: ProgrammableElement) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Mode transitions
# ---------------------------------------------------------------------------


@dataclass
class TransitionRule:
    """One control-plane entry for the mode-transition table.

    Matches packets arriving in mode ``from_config_id`` (optionally only
    on ``ingress_port``) and rewrites them into ``to_mode``. The value
    fields configure features the target mode *activates*.
    """

    from_config_id: int
    to_mode: str
    ingress_port: str | None = None
    buffer_addr: str | None = None
    age_budget_ns: int | None = None
    deadline_offset_ns: int | None = None
    notify_addr: str | None = None
    pace_rate_mbps: int | None = None
    source_addr: str | None = None
    dup_group: int | None = None
    dup_copies: int | None = None


class ModeTransitionProgram(Program):
    """Header rewriting between modes at segment boundaries.

    Sequence numbers for newly-SEQUENCED flows come from a per-flow
    register indexed by a hash of ``(experiment id, flow id)`` — exactly
    the stateful primitive Tofino provides. Concurrent flows of one
    experiment therefore draw from independent sequence counters and
    degrade/recover independently.

    With ``announce_to_source=True`` the element tells the stream's
    source about each flow's first transition (one MODE_ANNOUNCE per
    flow, register-deduplicated) — the §4.2 control messaging that lets
    endpoints reason about end-to-end behaviour hop by hop.
    """

    SEQ_REGISTER_SIZE = 65536

    def __init__(
        self,
        registry: ModeRegistry,
        rules: list[TransitionRule],
        announce_to_source: bool = False,
        directory: BufferDirectory | None = None,
        path_position: int = 0,
    ) -> None:
        self.registry = registry
        self.rules = rules
        self.announce_to_source = announce_to_source
        #: Optional live buffer map: when set, transitions into
        #: RETRANSMISSION modes resolve ``buffer_addr`` through the
        #: directory; with no live buffer the transition is *skipped* —
        #: the packet continues in its current (lesser) mode rather
        #: than advertising a dead NAK target (graceful degradation).
        self.directory = directory
        self.path_position = path_position
        self.transitions_applied = 0
        self.announcements_sent = 0
        #: Packets that stayed un-upgraded because no live buffer served
        #: their experiment, and the per-flow degradation episodes.
        self.degraded_packets = 0
        self.degradations = 0
        self.degradation_recoveries = 0
        #: Control-plane rewrites of the installed table (mid-flow
        #: shape-shifting via :meth:`replace_rules`).
        self.rewrites = 0
        self._degraded_flows: set[tuple[int, int]] = set()
        self._announced: set[tuple[int, int]] = set()
        self._element_ip = "0.0.0.0"
        self._element: ProgrammableElement | None = None
        self._table: Table | None = None
        self._action: Action | None = None

    def install(self, element: ProgrammableElement) -> None:
        pipeline = element.pipeline
        self._element_ip = element.ip or "0.0.0.0"
        self._element = element
        seq_register = pipeline.add_register(
            "mode_transition_seq", self.SEQ_REGISTER_SIZE, width_bits=32
        )
        table = Table(
            "mode_transition",
            keys=["meta.ingress_port", "mmt.config_id"],
            match_kinds=[MatchKind.EXACT, MatchKind.EXACT],
        )
        action = Action("transition_mode", self._make_action(seq_register))
        self._table = table
        self._action = action
        self._populate(table, action, self.rules)
        pipeline.add_table(table)

    def _populate(
        self, table: Table, action: Action, rules: list[TransitionRule]
    ) -> None:
        for rule in rules:
            target = self.registry.by_name(rule.to_mode)
            table.add_entry(
                (rule.ingress_port, rule.from_config_id),
                action,
                params={"rule": rule, "target": target},
                priority=1 if rule.ingress_port is not None else 0,
            )

    def replace_rules(self, rules: list[TransitionRule]) -> int:
        """Control-plane rewrite of the mode map, mid-flow.

        The installed table's entries are swapped for ``rules`` — the
        path-migration event where a segment starts shifting streams
        into a different shape. The table object, its action closure,
        and the per-flow sequence register all carry over, so a flow
        whose rewritten rule still sequences it continues its numbering
        uninterrupted and in-flight retransmit state stays valid.

        Unknown target modes raise before anything is touched (an
        atomic rewrite: the old map stays in force on failure). Returns
        the number of installed rules.
        """
        table, action = self._table, self._action
        if table is None or action is None:
            raise RuntimeError("program not installed; nothing to rewrite")
        for rule in rules:
            self.registry.by_name(rule.to_mode)  # validate before mutating
        table.entries.clear()
        self._populate(table, action, rules)
        self.rules = list(rules)
        self.rewrites += 1
        element = self._element
        if element is not None and element.tracer is not None:
            element.tracer.emit(
                "mode.rewrite", element.name, rules=len(rules)
            )
        return len(rules)

    def _make_action(self, seq_register):
        def transition_mode(view: PacketView, meta: Metadata, params: dict) -> None:
            header = view.mmt()
            if header.msg_type != MsgType.DATA:
                return
            rule: TransitionRule = params["rule"]
            target: Mode = params["target"]
            ctx = TransitionContext(now_ns=meta.now_ns)
            # Plain-int bit mask: IntFlag &/~ would re-wrap every result
            # through the enum machinery on this per-packet path.
            activating = int(target.features) & ~int(header.features)
            if self.directory is not None and int(target.features) & int(
                Feature.RETRANSMISSION
            ):
                live = self.directory.failover_for(
                    header.experiment_id, self.path_position
                )
                if live is None:
                    # No live buffer anywhere: leave the packet in its
                    # current mode instead of upgrading it into a
                    # reliability mode whose NAKs can never be served.
                    self.degraded_packets += 1
                    if header.flow_key not in self._degraded_flows:
                        self._degraded_flows.add(header.flow_key)
                        self.degradations += 1
                    element = self._element
                    if element is not None and element.tracer is not None:
                        element.tracer.emit(
                            "mode.skip", element.name,
                            header.experiment_id, header.flow_id or 0, header.seq,
                            reason="no_live_buffer",
                            from_config=rule.from_config_id,
                        )
                    return
                if header.flow_key in self._degraded_flows:
                    self._degraded_flows.discard(header.flow_key)
                    self.degradation_recoveries += 1
                ctx.buffer_addr = live.address
            if activating & int(Feature.SEQUENCED):
                index = flow_register_index(
                    header.experiment_id, header.flow_id or 0, seq_register.size
                )
                ctx.seq = seq_register.read_add(index, 1)
            if rule.buffer_addr is not None and ctx.buffer_addr is None:
                ctx.buffer_addr = rule.buffer_addr
            if activating & int(Feature.TIMELINESS):
                ctx.deadline_ns = meta.now_ns + (rule.deadline_offset_ns or 0)
                ctx.notify_addr = rule.notify_addr
            if activating & int(Feature.AGE_TRACKING):
                ctx.age_budget_ns = rule.age_budget_ns
            ctx.pace_rate_mbps = rule.pace_rate_mbps
            ctx.source_addr = rule.source_addr
            ctx.dup_group = rule.dup_group
            ctx.dup_copies = rule.dup_copies
            transition(header, target, ctx)
            if activating & int(Feature.AGE_TRACKING):
                view.sim_stamp(AGE_EPOCH_META, meta.now_ns)
            self.transitions_applied += 1
            element = self._element
            if element is not None and element.tracer is not None:
                # header.seq is final here (assigned above for flows the
                # rule sequenced), so this is the identity's birth event.
                element.tracer.emit(
                    "mode.transition", element.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                    from_config=rule.from_config_id, to_config=target.config_id,
                )
            if (
                self.announce_to_source
                and header.flow_key not in self._announced
                and view.has_header("ip")
            ):
                self._announced.add(header.flow_key)
                payload = ModeAnnouncePayload(
                    config_id=target.config_id,
                    element=self._element_ip,
                    at_ns=meta.now_ns,
                ).encode()
                announce = MmtHeader(
                    config_id=target.config_id,
                    msg_type=MsgType.MODE_ANNOUNCE,
                    experiment_id=header.experiment_id,
                )
                meta.emit(view.get("ip.src"), announce, payload)
                self.announcements_sent += 1

        return transition_mode


# ---------------------------------------------------------------------------
# Aging
# ---------------------------------------------------------------------------


class AgeUpdateProgram(Program):
    """Fixed-function stage updating age and (optionally) priority.

    "An element updates an 'age' field, and it additionally updates an
    'aged' flag if a maximum age threshold was exceeded by the time the
    packet reached that network element." (§5.4)
    """

    def __init__(self, prioritize_dscp: int | None = 46) -> None:
        #: DSCP applied to age-tracked traffic (EF by default) so queues
        #: can prioritize age-sensitive data; None disables remarking.
        self.prioritize_dscp = prioritize_dscp
        self.updates = 0
        self.newly_aged = 0
        self._element: ProgrammableElement | None = None

    def install(self, element: ProgrammableElement) -> None:
        self._element = element
        table = Table(
            "age_update",
            keys=[],
            default_action=Action("age_update", self._action),
            relevant_features=int(Feature.AGE_TRACKING),
        )
        element.pipeline.add_table(table)

    def _action(self, view: PacketView, meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.AGE_TRACKING):
            return
        epoch = view.sim_read(AGE_EPOCH_META)
        if epoch is None:
            return
        age = meta.now_ns - epoch
        if age < header.age_ns:
            return
        header.age_ns = age
        self.updates += 1
        if not header.aged and age > header.age_budget_ns:
            header.aged = True
            self.newly_aged += 1
            element = self._element
            if element is not None and element.tracer is not None:
                element.tracer.emit(
                    "age.aged", element.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                    age_ns=age, budget_ns=header.age_budget_ns,
                )
        if self.prioritize_dscp is not None and view.has_header("ip"):
            view.set("ip.dscp", self.prioritize_dscp)


# ---------------------------------------------------------------------------
# Buffers
# ---------------------------------------------------------------------------


class BufferTapProgram(Program):
    """Mirror sequenced data into the local buffer and advertise it.

    Installed on elements that host a retransmission buffer (DTN-side
    smartNICs in the pilot). Every sequenced DATA packet is mirrored to
    the buffer engine and the header's ``buffer_addr`` is rewritten to
    this element — it is now the nearest recovery point (§5.3).
    """

    def __init__(self, buffer_addr: str, advertise: bool = True) -> None:
        self.buffer_addr = buffer_addr
        #: ``False`` makes this a silent tap: packets are mirrored into
        #: the buffer but ``buffer_addr`` is left alone — how a failover
        #: buffer shadows a stream without hijacking its NAK target.
        self.advertise = advertise
        self._element: ProgrammableElement | None = None

    def install(self, element: ProgrammableElement) -> None:
        self._element = element
        table = Table(
            "buffer_tap",
            keys=[],
            default_action=Action("buffer_tap", self._action),
            relevant_features=int(Feature.SEQUENCED),
        )
        element.pipeline.add_table(table)

    def _action(self, view: PacketView, meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.SEQUENCED):
            return
        if header.msg_type != MsgType.DATA:
            return
        buffer = self._element.buffer if self._element is not None else None
        if buffer is not None and buffer.failed:
            return  # dead buffers neither cache nor advertise
        meta.mirror_to_buffer = True
        if self.advertise and header.has(Feature.RETRANSMISSION):
            header.buffer_addr = self.buffer_addr


class NearestBufferProgram(Program):
    """Refresh ``buffer_addr`` to a (remote) nearer buffer.

    For elements that do not host storage themselves but know — from
    the resource map — of a buffer closer to the receiver than whatever
    the header currently names ("identify DTN 1 as the nearest buffer",
    §5.4).

    Two control planes are supported. A static ``buffer_addr`` is the
    original pre-supposed wiring. Passing a :class:`BufferDirectory`
    plus this element's ``path_position`` makes the stamp *live*: each
    packet gets the nearest live buffer, so when a buffer dies mid-flow
    the directory's ``mark_down`` makes this element re-stamp flows to
    the next-nearest live one (buffer failover). With neither a live
    candidate nor a static fallback the header is left untouched.
    """

    def __init__(
        self,
        buffer_addr: str | None = None,
        directory: BufferDirectory | None = None,
        path_position: int = 0,
    ) -> None:
        if buffer_addr is None and directory is None:
            raise ValueError("need a static buffer_addr or a directory")
        self.buffer_addr = buffer_addr
        self.directory = directory
        self.path_position = path_position
        self.rewrites = 0
        #: Directory answers that *changed* mid-run (observable failover).
        self.failovers = 0
        #: Packets left pointing at their (possibly dead) old buffer
        #: because no live candidate existed.
        self.stale_stamps = 0
        #: Last stamped address per (experiment, flow): with a single
        #: shared cell, interleaved flows whose answers legitimately
        #: differ would each read the *other* flow's last stamp and
        #: count a phantom failover per packet.
        self._last_addr: dict[tuple[int, int], str] = {}
        self._element: ProgrammableElement | None = None

    def install(self, element: ProgrammableElement) -> None:
        self._element = element
        table = Table(
            "nearest_buffer",
            keys=[],
            default_action=Action("nearest_buffer", self._action),
            relevant_features=int(Feature.RETRANSMISSION),
        )
        element.pipeline.add_table(table)

    def _resolve(self, experiment_id: int) -> str | None:
        if self.directory is None:
            return self.buffer_addr
        live = self.directory.failover_for(experiment_id, self.path_position)
        if live is None:
            return self.buffer_addr if self.buffer_addr is not None else None
        return live.address

    def _action(self, view: PacketView, _meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.RETRANSMISSION):
            return
        if header.msg_type not in (MsgType.DATA, MsgType.HEARTBEAT):
            return
        addr = self._resolve(header.experiment_id)
        if addr is None:
            self.stale_stamps += 1
            return
        flow_key = header.flow_key
        last = self._last_addr.get(flow_key)
        element = self._element
        if last is not None and addr != last:
            self.failovers += 1
            if element is not None and element.tracer is not None:
                element.tracer.emit(
                    "buffer.failover", element.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                    old=last, new=addr,
                )
        self._last_addr[flow_key] = addr
        if header.buffer_addr != addr:
            if element is not None and element.tracer is not None:
                element.tracer.emit(
                    "buffer.restamp", element.name,
                    header.experiment_id, header.flow_id or 0, header.seq,
                    old=header.buffer_addr, new=addr,
                )
            header.buffer_addr = addr
            self.rewrites += 1


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class DeadlineEnforceProgram(Program):
    """Shed packets that already missed their deadline; report misses.

    Explicit transport deadlines "provide a signal for congestion and
    an input to active queue management" (§5.3): data that is already
    late is not worth WAN capacity, so it is dropped here, and a miss
    report is generated toward the flow's notify address.
    """

    def __init__(self, report: bool = True) -> None:
        self.report = report
        self.dropped_late = 0

    def install(self, element: ProgrammableElement) -> None:
        table = Table(
            "deadline_enforce",
            keys=[],
            default_action=Action("deadline_enforce", self._action),
            relevant_features=int(Feature.TIMELINESS),
        )
        element.pipeline.add_table(table)

    def _action(self, view: PacketView, meta: Metadata, _params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.TIMELINESS) or header.msg_type != MsgType.DATA:
            return
        if meta.now_ns <= header.deadline_ns:
            return
        meta.mark_to_drop()
        self.dropped_late += 1
        if self.report and header.notify_addr:
            payload = DeadlineMissPayload(
                seq=header.seq or 0,
                deadline_ns=header.deadline_ns,
                observed_ns=meta.now_ns,
                experiment_id=header.experiment_id,
            ).encode()
            report_header = type(header)(
                config_id=header.config_id,
                msg_type=MsgType.DEADLINE_MISS,
                experiment_id=header.experiment_id,
            )
            meta.emit(header.notify_addr, report_header, payload)


# ---------------------------------------------------------------------------
# Duplication
# ---------------------------------------------------------------------------


class DuplicationProgram(Program):
    """In-network duplication: dup_group → additional destinations.

    "Streams can be duplicated in the network to reach several
    downstream researchers directly, ensuring that they get rapid
    access to fresh data." (§5.1)
    """

    def __init__(self, groups: dict[int, list[str]]) -> None:
        self.groups = groups
        self.duplicated = 0

    def install(self, element: ProgrammableElement) -> None:
        table = Table(
            "duplication",
            keys=["mmt.dup_group"],
            relevant_features=int(Feature.DUPLICATION),
        )
        action = Action("duplicate", self._action)
        for group, destinations in self.groups.items():
            table.add_entry((group,), action, params={"destinations": destinations})
        element.pipeline.add_table(table)

    def _action(self, view: PacketView, meta: Metadata, params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.DUPLICATION) or header.msg_type != MsgType.DATA:
            return
        destinations: list[str] = params["destinations"]
        for dst in destinations:
            meta.clone_to(dst)
        header.dup_copies = 1 + len(destinations)
        self.duplicated += 1


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


class BackpressureProgram(Program):
    """Relay backpressure to the source when local queues run hot (§5.1).

    A register holds the last emission timestamp so signals are
    rate-limited (one per ``min_interval_ns``), the same
    register-guarded pattern used for congestion notification on real
    programmable hardware.
    """

    def __init__(
        self,
        occupancy_threshold_pct: int = 60,
        advised_rate_mbps: int = 1000,
        min_interval_ns: int = 1_000_000,
    ) -> None:
        self.occupancy_threshold_pct = occupancy_threshold_pct
        self.advised_rate_mbps = advised_rate_mbps
        self.min_interval_ns = min_interval_ns
        self.signals_sent = 0
        self._register = None

    def install(self, element: ProgrammableElement) -> None:
        self._register = element.pipeline.add_register(
            "backpressure_last_ns", 1, width_bits=64
        )
        table = Table(
            "backpressure",
            keys=["meta.queue_occupancy_pct"],
            match_kinds=[MatchKind.RANGE],
            relevant_features=int(Feature.BACKPRESSURE),
        )
        table.add_entry(
            ((self.occupancy_threshold_pct, 100),),
            Action("gen_backpressure", self._action),
            params={"origin": element.ip or "0.0.0.0"},
        )
        element.pipeline.add_table(table)

    def _action(self, view: PacketView, meta: Metadata, params: dict) -> None:
        header = view.mmt()
        if not header.has(Feature.BACKPRESSURE) or header.msg_type != MsgType.DATA:
            return
        last = self._register.read(0)
        if meta.now_ns - last < self.min_interval_ns:
            return
        self._register.write(0, meta.now_ns)
        payload = BackpressurePayload(
            advised_rate_mbps=self.advised_rate_mbps,
            origin=params["origin"],
            severity=1,
        ).encode()
        signal = type(header)(
            config_id=header.config_id,
            msg_type=MsgType.BACKPRESSURE,
            experiment_id=header.experiment_id,
        )
        meta.emit(header.source_addr, signal, payload)
        self.signals_sent += 1
