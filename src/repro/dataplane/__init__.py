"""Programmable dataplane models (P4 pipelines, Tofino2, Alveo NICs).

This package substitutes for the pilot's hardware (§5.4): a
match-action pipeline abstraction with Tofino-like constraint
enforcement (:mod:`.pipeline`), the MMT in-network programs
(:mod:`.programs`), switch/NIC device models (:mod:`.tofino`,
:mod:`.alveo`), and the assembled Fig. 4 testbed (:mod:`.pilot`).
"""

from .alveo import ALVEO_LATENCY_NS, ALVEO_STAGES, AlveoNic, U280_HBM_BYTES, U55C_HBM_BYTES
from .element import ElementStats, ProgrammableElement
from .pilot import PILOT_EXPERIMENT, PilotConfig, PilotReport, PilotTestbed
from .pipeline import (
    Action,
    DROP,
    MatchKind,
    Metadata,
    NOP,
    PacketView,
    Pipeline,
    PipelineError,
    RegisterArray,
    Table,
    TableEntry,
)
from .programs import (
    AgeUpdateProgram,
    BackpressureProgram,
    BufferTapProgram,
    DeadlineEnforceProgram,
    DuplicationProgram,
    ModeTransitionProgram,
    NearestBufferProgram,
    Program,
    TransitionRule,
)
from .loadbalancer import BackendState, LoadBalancerError, LoadBalancerProgram
from .segment import SegmentRecoveryProgram, SegmentRecoveryStats
from .tofino import TOFINO2_LATENCY_NS, TOFINO2_STAGES, TofinoSwitch

__all__ = [
    "ALVEO_LATENCY_NS",
    "ALVEO_STAGES",
    "Action",
    "AgeUpdateProgram",
    "AlveoNic",
    "BackpressureProgram",
    "BufferTapProgram",
    "DROP",
    "DeadlineEnforceProgram",
    "BackendState",
    "DuplicationProgram",
    "ElementStats",
    "LoadBalancerError",
    "LoadBalancerProgram",
    "MatchKind",
    "Metadata",
    "ModeTransitionProgram",
    "NOP",
    "NearestBufferProgram",
    "PILOT_EXPERIMENT",
    "PacketView",
    "PilotConfig",
    "PilotReport",
    "PilotTestbed",
    "Pipeline",
    "PipelineError",
    "Program",
    "ProgrammableElement",
    "RegisterArray",
    "SegmentRecoveryProgram",
    "SegmentRecoveryStats",
    "TOFINO2_LATENCY_NS",
    "TOFINO2_STAGES",
    "Table",
    "TableEntry",
    "TofinoSwitch",
    "TransitionRule",
    "U280_HBM_BYTES",
    "U55C_HBM_BYTES",
]
