"""Alveo FPGA smartNIC model (ESnet smartNIC platform).

The pilot used AMD Alveo U280 and U55C cards managed with the ESnet
smartNIC platform. Functionally, each card is a *bump-in-the-wire*
between a DTN and the network that can:

- run header-processing pipelines at line rate (like the Tofino model,
  but with fewer effective stages available to the user logic);
- host multi-gigabyte retransmission buffers in on-card HBM — this is
  what lets a NAK be served without involving the host CPU;
- originate control packets (retransmissions, miss reports).

The card has exactly two ports, named ``"host"`` and ``"net"``.
Forwarding between them is transparent except for packets addressed to
the card's own IP (NAK service). FPGA datapath latency is modelled as a
constant, like the switch ASIC.
"""

from __future__ import annotations

from ..netsim.engine import Simulator
from ..netsim.link import Port
from ..netsim.packet import Packet
from ..netsim.queues import QueueDiscipline
from .element import ProgrammableElement

#: Usable pipeline depth we allow user logic on the FPGA model.
ALVEO_STAGES = 16

#: FPGA store-and-forward datapath latency (~2 us typical for a
#: full-reassembly smartNIC pipeline).
ALVEO_LATENCY_NS = 2_000

#: On-card HBM capacities (bytes) — the resource that bounds how much
#: recent stream a card can hold for retransmission.
U280_HBM_BYTES = 8 * 1024**3
U55C_HBM_BYTES = 16 * 1024**3


class AlveoNic(ProgrammableElement):
    """A two-port FPGA smartNIC; see module docstring."""

    HOST_PORT = "host"
    NET_PORT = "net"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        ip: str | None = None,
        hbm_bytes: int = U280_HBM_BYTES,
        datapath_latency_ns: int = ALVEO_LATENCY_NS,
    ) -> None:
        super().__init__(sim, name, mac=mac, ip=ip, stages=ALVEO_STAGES)
        self.hbm_bytes = hbm_bytes
        self.datapath_latency_ns = datapath_latency_ns

    @classmethod
    def u280(cls, sim: Simulator, name: str, mac: str, ip: str | None = None) -> "AlveoNic":
        return cls(sim, name, mac=mac, ip=ip, hbm_bytes=U280_HBM_BYTES)

    @classmethod
    def u55c(cls, sim: Simulator, name: str, mac: str, ip: str | None = None) -> "AlveoNic":
        return cls(sim, name, mac=mac, ip=ip, hbm_bytes=U55C_HBM_BYTES)

    def attach_buffer(self, capacity_bytes: int | None = None):
        """Host a retransmission buffer in HBM (defaults to all of it)."""
        capacity = capacity_bytes if capacity_bytes is not None else self.hbm_bytes
        if capacity > self.hbm_bytes:
            raise ValueError(
                f"{self.name}: buffer {capacity} B exceeds HBM {self.hbm_bytes} B"
            )
        return super().attach_buffer(capacity)

    def add_port(self, name: str, queue: QueueDiscipline | None = None) -> Port:
        if name not in (self.HOST_PORT, self.NET_PORT) and not name.startswith("to_"):
            raise ValueError(f"Alveo ports are {self.HOST_PORT!r}/{self.NET_PORT!r}")
        if len(self.ports) >= 2:
            raise ValueError(f"{self.name}: Alveo cards have exactly two ports")
        return super().add_port(name, queue=queue)

    def receive(self, packet: Packet, port: Port) -> None:
        if self.datapath_latency_ns == 0:
            super().receive(packet, port)
            return
        self.sim.schedule(self.datapath_latency_ns, super().receive, packet, port)

    def hbm_flow_occupancy(self) -> dict[tuple[int, int], int]:
        """Bytes of HBM each ``(experiment, flow)`` currently occupies.

        The shared on-card buffer is the contended resource when many
        concurrent flows ride one card; this is the per-flow residency
        view a fairness scrape needs (empty when no buffer is hosted).
        """
        if self.buffer is None:
            return {}
        return self.buffer.bytes_by_flow()
