"""Long-soak endurance harness: hours of simulated time under churn.

The chaos scenarios (:mod:`repro.faults.chaos`) answer "does one fault
recover?"; the soak answers "does *nothing leak* across thousands of
them?". One harness run drives the directory-wired pilot for
hours-equivalent simulated time with a steady + Poisson DAQ mix and a
periodic churn script — WAN link flaps, Gilbert–Elliott burst windows
with parameter drift, a diurnal rate curve, U280 buffer kill/restore
cycles, directory liveness flaps that degrade and re-upgrade every
sender, and mid-flow mode-map rewrites at the U55C — then runs a
receiver-farm segment with fleet-node flaps on top.

Two things make it an *endurance* harness rather than a long test:

- **Bounded-memory sampling.** The run is chunked into epochs; at each
  boundary the harness samples every structure that could leak —
  retransmit-buffer residency (bytes and entries, both buffers),
  NAK-forward-guard population across every stack and element, the
  tracer's flight-recorder retention, and the telemetry registry's
  series count. Each gets an explicit budget from the config, peaks are
  asserted against the budgets, and the *growth slope* across the final
  third of the run must be flat (the churn script front-loads its
  loss-producing faults so a leak-free build plateaus).
- **Replayable determinism.** All randomness (Poisson arrivals, GE
  draws) comes from the simulator's seeded RNG streams and all fault
  times are derived from the configured duration, so two runs with one
  seed produce byte-identical reports — ``BENCH_soak.json`` carries no
  wall-clock values and is diffable across commits.

``run_soak`` raises :class:`SoakBudgetError` on any violated budget
(``strict=False`` records violations in the report instead); the
``repro soak`` CLI and the CI ``soak-smoke`` job both run strict.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path

from .dataplane.pilot import PilotConfig, PilotTestbed
from .dataplane.programs import TransitionRule
from .faults.dynamics import LinkDynamics, Trajectory
from .faults.lossmodels import GilbertElliottLoss
from .faults.plan import FaultInjector, FaultPlan
from .netsim.engine import Simulator
from .netsim.units import MILLISECOND, SECOND
from .obs import Sampler, SloRule, Watchdog
from .telemetry.benchfmt import BenchResult

HOUR = 3600 * SECOND


class SoakBudgetError(RuntimeError):
    """A bounded-memory budget was violated during a strict soak.

    ``health`` carries the :class:`repro.obs.HealthReport` behind the
    message — the same violations, structured, with the engine time of
    each first breach.
    """

    def __init__(self, message: str, health=None) -> None:
        super().__init__(message)
        self.health = health


@dataclass
class SoakConfig:
    """Parameters and budgets for one endurance run."""

    seed: int = 42
    #: Simulated duration of the pilot segment (default: one hour).
    duration_ns: int = 1 * HOUR
    #: Steady DAQ flow: one message every this many ns (flow 0).
    steady_interval_ns: int = 250 * MILLISECOND
    #: Poisson DAQ flow: mean inter-arrival (flow 1); 0 disables.
    poisson_mean_ns: int = 400 * MILLISECOND
    payload_size: int = 8000
    wan_delay_ns: int = 1 * MILLISECOND
    #: Sampling epochs across the run (memory metrics per boundary).
    epochs: int = 120
    #: Pilot buffer capacities — deliberately small enough that FIFO
    #: eviction saturates each buffer between wipe cycles: residency
    #: then rides the capacity bound and its sampled peak is identical
    #: in every third of the run.
    buffer_bytes: int = 8 * 1024 * 1024
    dtn1_buffer_bytes: int = 8 * 1024 * 1024
    #: Flight-recorder ring capacity (anomalous spans pin past it).
    trace_capacity: int = 4096
    #: Fleet segment: receiver-farm size and traffic (0 nodes skips it).
    fleet_nodes: int = 6
    fleet_flows: int = 8
    fleet_messages: int = 1200
    fleet_interval_ns: int = 500_000
    #: Node flap cycles (crash + restore) during the fleet stream.
    fleet_flaps: int = 3

    # -- asserted size budgets -------------------------------------------------
    #: Peak retransmit-buffer residency, as a fraction of capacity in
    #: percent — FIFO eviction must keep ``bytes_used <= capacity``, so
    #: anything over 100 means the bound itself broke.
    budget_retx_occupancy_pct: int = 100
    #: Peak NAK-forward-guard population across all stacks + elements
    #: (the guard's own LRU cap is 1024; a healthy soak stays far under).
    budget_guard_entries: int = 256
    #: Peak flight-recorder retention: ring capacity + pinned anomaly
    #: spans. Churn is front-loaded, so this bounds total anomalies too.
    budget_trace_events: int = 65536
    #: Peak telemetry series count (label cardinality must not grow
    #: with time, only with topology size).
    budget_registry_series: int = 512
    #: Allowed growth of each sampled metric between the middle third's
    #: peak and the final third's peak (0 = must be flat).
    budget_growth: int = 0
    #: Growth budget specific to retransmit-buffer bytes: the staggered
    #: wipe cycles make residency a uniform sawtooth, but Poisson
    #: arrival phase shifts its peak by a few packets between thirds.
    #: This covers that quantization; a leak compounds every epoch and
    #: blows far past it.
    budget_growth_retx_bytes: int = 1024 * 1024
    #: Growth budget specific to flight-recorder retention: packets
    #: that went anomalous during the (front-loaded) loss windows still
    #: pin the occasional late span — a ``buffer.evict`` of their cached
    #: copy, bounded by stores-per-identity. Ring growth would blow
    #: through this on the first leaky epoch.
    budget_growth_trace_events: int = 256

    @property
    def epoch_ns(self) -> int:
        return max(1, self.duration_ns // self.epochs)

    @classmethod
    def ci(cls, seed: int = 42) -> "SoakConfig":
        """The CI smoke preset: ~60 s simulated, denser traffic so the
        same churn script (scaled into the shorter run) still bites."""
        return cls(
            seed=seed,
            duration_ns=60 * SECOND,
            steady_interval_ns=50 * MILLISECOND,
            poisson_mean_ns=80 * MILLISECOND,
            epochs=60,
            fleet_messages=600,
        )


@dataclass
class SoakReport:
    """Everything one soak measured (all plain ints: committed to
    ``BENCH_soak.json`` and diffed across commits, so nothing
    wall-clock-dependent belongs here)."""

    duration_ns: int
    samples: int
    messages_sent: int
    steady_sent: int
    poisson_sent: int
    delivered: int
    duplicates: int
    unrecovered: int
    naks_sent: int
    naks_served: int
    retransmissions: int
    lost_down: int
    lost_model: int
    faults_injected: int
    faults_fired: int
    mode_degradations: int
    mode_upgrades: int
    degraded_final: int
    mode_rewrites: int
    link_rate_changes: int
    link_delay_changes: int
    ge_drifts: int
    # -- sampled memory metrics (peaks over all epochs) ------------------------
    peak_retx_bytes: int
    peak_retx_entries: int
    peak_retx_occupancy_pct: int
    peak_guard_entries: int
    peak_trace_events: int
    peak_registry_series: int
    final_retx_bytes: int
    final_trace_events: int
    # -- growth slopes: final-third peak minus middle-third peak ---------------
    growth_retx_bytes: int
    growth_guard_entries: int
    growth_trace_events: int
    growth_registry_series: int
    budget_violations: int
    # -- fleet segment ---------------------------------------------------------
    fleet_messages: int
    fleet_delivered: int
    fleet_unrecovered: int
    fleet_flaps: int
    fleet_marks_down: int

    @property
    def complete(self) -> bool:
        return (
            self.unrecovered == 0
            and self.fleet_unrecovered == 0
            and self.budget_violations == 0
        )

    def metrics(self) -> dict[str, int]:
        """Flat metric dict, ready for :meth:`BenchResult.record`."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


@dataclass
class SoakSample:
    """One epoch-boundary snapshot of everything that could leak."""

    at_ns: int
    retx_bytes: int
    retx_entries: int
    guard_entries: int
    trace_events: int
    registry_series: int


def _build_churn(cfg: SoakConfig, pilot: PilotTestbed) -> tuple[FaultPlan, GilbertElliottLoss]:
    """The periodic churn script, derived entirely from ``duration_ns``.

    Loss-producing faults (flaps, GE windows, buffer kills) are
    confined to the first two thirds so the final third — where the
    growth-slope budgets apply — sees only clean churn (mode rewrites,
    steady traffic). A leak would still grow there; recovery backlog
    does not.
    """
    d = cfg.duration_ns
    plan = FaultPlan()
    wan = pilot.wan_link
    directory = pilot.directory
    assert directory is not None and pilot.dtn1_buffer is not None

    # Diurnal WAN rate curve: the link sags to 60% capacity mid-"day".
    rate = Trajectory.diurnal(
        low=wan.rate_bps * 6 // 10, high=wan.rate_bps, period_ns=d
    )
    plan.link_dynamics(
        LinkDynamics(wan, rate_bps=rate, start_ns=0, end_ns=d,
                     sample_every_ns=max(d // 96, 1))
    )

    # Two Gilbert-Elliott burst windows; the second one drifts.
    model = GilbertElliottLoss(
        p_good_to_bad=0.01, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.5
    )
    plan.set_loss_model(wan, model, at_ns=d // 10)
    plan.clear_loss_model(wan, at_ns=2 * d // 10)
    plan.set_loss_model(wan, model, at_ns=4 * d // 10)
    plan.ge_drift(
        model,
        [
            (45 * d // 100, {"p_good_to_bad": 0.02, "loss_bad": 0.7}),
            (55 * d // 100, {"p_good_to_bad": 0.005, "loss_bad": 0.3}),
        ],
        target=wan.name,
    )
    plan.clear_loss_model(wan, at_ns=6 * d // 10)

    # Short link flaps every ~14% of the run, first two thirds only.
    plan.link_flap(
        wan,
        first_down_ns=d // 7,
        down_ns=5 * MILLISECOND,
        period_ns=d // 7,
        count=4,
    )

    # Staggered buffer kill/restore cycles, alternating every d/12
    # (U280 on odd multiples through 11d/12, DTN 1 on even multiples
    # through 10d/12 — never both down). Each wipe resets that buffer's
    # residency, so combined residency sawtooths with the churn period
    # instead of growing toward capacity, and the sawtooth's peak is
    # the same in every third of the run: the growth-slope budget then
    # measures leaks, not accumulation.
    down_ns = max(1, d // 100)
    for i in range(6):
        at = (2 * i + 1) * d // 12
        plan.buffer_fail(pilot.buffer, at_ns=at, directory=directory)
        plan.buffer_restore(pilot.buffer, at_ns=at + down_ns, directory=directory)
        if i < 5:
            at = (2 * i + 2) * d // 12
            plan.buffer_fail(pilot.dtn1_buffer, at_ns=at, directory=directory)
            plan.buffer_restore(
                pilot.dtn1_buffer, at_ns=at + down_ns, directory=directory
            )

    # Directory liveness flaps taking *every* buffer down for 400 ms:
    # long enough that each sender transmitting inside the window
    # degrades, short enough (vs. the 2 ms-based recheck backoff) that
    # every degraded sender re-upgrades instead of giving up.
    for start in (3 * d // 10, 11 * d // 20):
        window = min(400 * MILLISECOND, max(1, d // 20))
        for address in (pilot.buffer.address, pilot.dtn1_buffer.address):
            plan.at(
                start,
                lambda a=address: directory.mark_down(a),
                kind="directory_down",
                target=address,
            )
            plan.at(
                start + window,
                lambda a=address: directory.mark_up(a),
                kind="directory_up",
                target=address,
            )

    # Mid-flow mode-map rewrites at the U55C, flip-flopping between the
    # deliver-check map and a bare age-recover map — these continue into
    # the final third (a rewrite is clean churn: no anomalies, no leak).
    age_recover_id = pilot.registry.by_name("age-recover").config_id
    original = TransitionRule(
        from_config_id=age_recover_id,
        to_mode="deliver-check",
        deadline_offset_ns=pilot.config.deadline_offset_ns,
        notify_addr=pilot.dtn1.ip,
    )
    shifted = TransitionRule(from_config_id=age_recover_id, to_mode="age-recover")
    for i in range(8):
        at = d // 9 + i * d // 9
        rules = [shifted] if i % 2 == 0 else [original]
        plan.mode_rewrite(pilot.u55c_transition, rules, at_ns=at)

    return plan, model


def _guard_entries(pilot: PilotTestbed) -> int:
    """Total NAK-forward-guard population across every stack + element."""
    total = 0
    for stack in (pilot.sensor_stack, pilot.dtn1_stack, pilot.dtn2_stack):
        total += len(stack._nak_forward_guard)
    for element in (pilot.u280, pilot.tofino, pilot.u55c):
        total += len(element._nak_forward_guard)
    return total


def _sample(pilot: PilotTestbed) -> SoakSample:
    assert pilot.dtn1_buffer is not None and pilot.metrics is not None
    return SoakSample(
        at_ns=pilot.sim.now,
        retx_bytes=pilot.buffer.bytes_used + pilot.dtn1_buffer.bytes_used,
        retx_entries=len(pilot.buffer) + len(pilot.dtn1_buffer),
        guard_entries=_guard_entries(pilot),
        trace_events=pilot.tracer.events_retained,
        registry_series=len(pilot.metrics),
    )


def _growth(values: list[int]) -> int:
    """Final-third peak minus middle-third peak (<= 0 means flat)."""
    n = len(values)
    if n < 3:
        return 0
    middle = values[n // 3 : 2 * n // 3]
    final = values[2 * n // 3 :]
    return max(final) - max(middle)


def _wire_sampler(cfg: SoakConfig, pilot: PilotTestbed) -> Sampler:
    """Leak gauges as an (unarmed) on-clock sampler.

    The soak drives :meth:`Sampler.sample_now` manually at each epoch
    boundary rather than arming it — no extra engine events, so the
    event sequence (and ``BENCH_soak.json``) is byte-identical to the
    pre-sampler harness.
    """
    assert pilot.dtn1_buffer is not None and pilot.metrics is not None
    capacity = cfg.buffer_bytes + cfg.dtn1_buffer_bytes
    sampler = Sampler(
        pilot.sim, every_ns=cfg.epoch_ns, capacity=cfg.epochs + 16
    )
    sampler.watch(
        "soak_retx_bytes",
        lambda: pilot.buffer.bytes_used + pilot.dtn1_buffer.bytes_used,
    )
    sampler.watch(
        "soak_retx_entries",
        lambda: len(pilot.buffer) + len(pilot.dtn1_buffer),
    )
    sampler.watch("soak_guard_entries", lambda: _guard_entries(pilot))
    sampler.watch(
        "soak_trace_events", lambda: pilot.tracer.events_retained
    )
    sampler.watch("soak_registry_series", lambda: len(pilot.metrics))
    # Floor division by a positive constant is monotone, so the maximum
    # of the per-epoch occupancy equals the occupancy of the peak bytes
    # — the exact quantity the legacy budget asserted.
    sampler.watch(
        "soak_retx_occupancy_pct",
        lambda: (pilot.buffer.bytes_used + pilot.dtn1_buffer.bytes_used)
        * 100
        // capacity,
    )
    return sampler


def _budget_rules(cfg: SoakConfig) -> list[SloRule]:
    """The soak budgets as declarative SLO rules.

    Declaration order matches the legacy bespoke check order, so the
    rendered violation list — and ``SoakBudgetError``'s message — is
    unchanged.
    """
    return [
        SloRule("soak_retx_occupancy_pct", "max", "<=",
                cfg.budget_retx_occupancy_pct),
        SloRule("soak_guard_entries", "max", "<=", cfg.budget_guard_entries),
        SloRule("soak_trace_events", "max", "<=", cfg.budget_trace_events),
        SloRule("soak_registry_series", "max", "<=",
                cfg.budget_registry_series),
        SloRule("soak_growth_retx_bytes", "last", "<=",
                cfg.budget_growth_retx_bytes),
        SloRule("soak_growth_guard_entries", "last", "<=", cfg.budget_growth),
        SloRule("soak_growth_trace_events", "last", "<=",
                cfg.budget_growth_trace_events),
        SloRule("soak_growth_registry_series", "last", "<=",
                cfg.budget_growth),
        SloRule("soak_unrecovered", "last", "==", 0),
    ]


def _legacy_violation(event, pilot_unrecovered: int, fleet_unrecovered: int) -> str:
    """Render one health event in the historical violation wording."""
    metric, observed = event.metric, event.observed
    if metric == "soak_retx_occupancy_pct":
        return f"retx occupancy {observed}% > {event.threshold}%"
    if metric == "soak_guard_entries":
        return f"guard {observed} > {event.threshold}"
    if metric == "soak_trace_events":
        return f"trace {observed} > {event.threshold}"
    if metric == "soak_registry_series":
        return f"series {observed} > {event.threshold}"
    if metric.startswith("soak_growth_"):
        name = metric[len("soak_growth_"):]
        return f"{name} grew by {observed} in the final third"
    if metric == "soak_unrecovered":
        return (
            f"unrecovered losses: pilot={pilot_unrecovered} "
            f"fleet={fleet_unrecovered}"
        )
    return f"{event.rule} violated (observed {observed})"


def _run_fleet_segment(cfg: SoakConfig) -> tuple[int, int, int, int, int]:
    """Receiver-farm endurance leg with periodic node flaps.

    Returns (messages, delivered, unrecovered, flaps, marks_down).
    """
    if cfg.fleet_nodes <= 0 or cfg.fleet_messages <= 0:
        return (0, 0, 0, 0, 0)
    from .fleet import FarmConfig, ReceiverFarm

    farm = ReceiverFarm(
        sim=Simulator(seed=cfg.seed),
        config=FarmConfig(
            nodes=cfg.fleet_nodes,
            flows=cfg.fleet_flows,
            wan_delay_ns=cfg.wan_delay_ns,
        ),
    )
    base_count, extra = divmod(cfg.fleet_messages, cfg.fleet_flows)
    span = (base_count + (1 if extra else 0)) * cfg.fleet_interval_ns
    flaps = max(0, cfg.fleet_flaps)
    plan = FaultPlan()
    for i in range(flaps):
        victim = (i * 2 + 1) % cfg.fleet_nodes
        down = span * (i + 1) // (flaps + 1)
        up = down + max(1, span // (4 * (flaps + 1)))
        plan.at(down, lambda v=victim: farm.crash_node(v),
                kind="node_crash", target=farm.nodes[victim].host.name)
        plan.at(up, lambda v=victim: farm.restore_node(v),
                kind="node_restore", target=farm.nodes[victim].host.name)
    injector = FaultInjector(farm.sim, plan)
    for fid in range(cfg.fleet_flows):
        count = base_count + (1 if fid < extra else 0)
        farm.send_stream(
            count, payload_size=cfg.payload_size,
            interval_ns=cfg.fleet_interval_ns, flow=fid,
        )
    injector.arm()
    report = farm.run()
    return (
        report.messages_sent,
        report.delivered,
        report.unrecovered,
        flaps,
        report.marks_down,
    )


def run_soak(cfg: SoakConfig | None = None, strict: bool = True) -> SoakReport:
    """Run the endurance harness and return its report.

    ``strict=True`` (the default, and what CI runs) raises
    :class:`SoakBudgetError` the moment a size budget or growth slope
    is violated or any loss goes unrecovered; ``strict=False`` records
    the violation count in the report instead.
    """
    cfg = cfg or SoakConfig()
    pilot = PilotTestbed(
        sim=Simulator(seed=cfg.seed),
        config=PilotConfig(
            wan_delay_ns=cfg.wan_delay_ns,
            telemetry=True,
            trace=True,
            trace_capacity=cfg.trace_capacity,
            use_directory=True,
            reliable_from_dtn1=True,
            failover_buffer=True,
            buffer_bytes=cfg.buffer_bytes,
            dtn1_buffer_bytes=cfg.dtn1_buffer_bytes,
            flows=2,
        ),
    )
    # Heartbeats pace with the soak, not the default millisecond cadence
    # (an hour of 1 ms idle beats would dominate the event count).
    for sender in pilot.dtn1_senders:
        sender.config.heartbeat_interval_ns = max(
            sender.config.heartbeat_interval_ns, cfg.steady_interval_ns // 2
        )
    # Retire the U280's identify->age-recover upgrade rule: this build
    # already sequences at DTN 1, and during the brief gap between a
    # directory mark-up and a degraded sender's re-check the element
    # would otherwise upgrade identify packets out of its *own* sequence
    # register — a colliding sequence space under liveness churn.
    pilot.u280_transition.replace_rules([])

    plan, model = _build_churn(cfg, pilot)
    injector = FaultInjector(pilot.sim, plan)
    injector.tracer = pilot.tracer

    # -- traffic: steady flow 0 + Poisson flow 1 -------------------------------
    steady_sent = 0
    t = 0
    while t < cfg.duration_ns:
        pilot.sim.schedule(t, pilot.send_message, cfg.payload_size, 0)
        steady_sent += 1
        t += cfg.steady_interval_ns
    poisson_sent = 0
    if cfg.poisson_mean_ns > 0:
        rng = pilot.sim.rng("soak:poisson")
        t = 0
        while True:
            t += max(1, round(rng.expovariate(1.0 / cfg.poisson_mean_ns)))
            if t >= cfg.duration_ns:
                break
            pilot.sim.schedule(t, pilot.send_message, cfg.payload_size, 1)
            poisson_sent += 1

    injector.arm()

    # -- chunked run with epoch sampling ---------------------------------------
    # Budgets live in the observability layer now: the sampler snapshots
    # every leak gauge at each epoch boundary (driven manually — no
    # engine events, so seeded runs replay byte-identically) and the
    # watchdog evaluates the budget rules on each sample as it lands,
    # pinning the flight recorder at the first breach.
    sampler = _wire_sampler(cfg, pilot)
    watchdog = Watchdog(_budget_rules(cfg), sampler=sampler, tracer=pilot.tracer)
    epoch = cfg.epoch_ns
    boundary = epoch
    while boundary <= cfg.duration_ns:
        pilot.sim.run(until_ns=boundary)
        sampler.sample_now()
        boundary += epoch
    # Drain: remaining recovery, rechecks, closing heartbeats.
    pilot.run(reconcile=False)
    # Degraded windows relay unsequenced messages, so reconciliation is
    # against each sender's *sequenced* space, not relay counts.
    for fid in range(pilot.config.flows):
        pilot.dtn2_receiver.request_missing(
            pilot.experiment_id, pilot.dtn1_senders[fid].next_seq, flow_id=fid
        )
    pilot.sim.run()
    base = pilot.report()
    final = _sample(pilot)

    # -- budgets ---------------------------------------------------------------
    # Growth slopes come from the epoch-boundary series alone (the
    # post-drain snapshot is not an epoch), exactly as before.
    values = lambda metric: sampler.series(metric).values()  # noqa: E731
    peak_retx_bytes = max(values("soak_retx_bytes"))
    growths = {
        "retx_bytes": _growth(values("soak_retx_bytes")),
        "guard_entries": _growth(values("soak_guard_entries")),
        "trace_events": _growth(values("soak_trace_events")),
        "registry_series": _growth(values("soak_registry_series")),
    }
    peak_retx_entries = max(values("soak_retx_entries"))
    peak_occupancy = max(values("soak_retx_occupancy_pct"))
    peak_guard = max(values("soak_guard_entries"))
    # The trace/series peaks include the post-drain state; fold the
    # final snapshot into those series so the ``max`` rules see it.
    sampler.record("soak_trace_events", final.trace_events)
    sampler.record("soak_registry_series", final.registry_series)
    peak_trace = max(values("soak_trace_events"))
    peak_series = max(values("soak_registry_series"))
    for name, value in growths.items():
        sampler.record(f"soak_growth_{name}", value)
    fleet = _run_fleet_segment(cfg)
    sampler.record("soak_unrecovered", base.unrecovered + fleet[2])
    watchdog.check()
    health = watchdog.report()

    violations = [
        _legacy_violation(event, base.unrecovered, fleet[2])
        for event in health.events
    ]
    if strict and violations:
        raise SoakBudgetError("; ".join(violations), health=health)

    senders = pilot.dtn1_senders
    report = SoakReport(
        duration_ns=cfg.duration_ns,
        samples=sampler.ticks,
        messages_sent=base.messages_sent,
        steady_sent=steady_sent,
        poisson_sent=poisson_sent,
        delivered=base.delivered,
        duplicates=base.duplicates,
        unrecovered=base.unrecovered,
        naks_sent=base.naks_sent,
        naks_served=base.naks_served,
        retransmissions=base.retransmissions,
        lost_down=pilot.wan_link.stats.lost_down,
        lost_model=pilot.wan_link.stats.lost_model,
        faults_injected=len(plan),
        faults_fired=len(injector.fired),
        mode_degradations=sum(s.stats.mode_degradations for s in senders),
        mode_upgrades=sum(s.stats.mode_upgrades for s in senders),
        degraded_final=sum(s.stats.degraded_final for s in senders),
        mode_rewrites=pilot.u55c_transition.rewrites,
        link_rate_changes=pilot.wan_link.stats.rate_changes,
        link_delay_changes=pilot.wan_link.stats.delay_changes,
        ge_drifts=model.drifts,
        peak_retx_bytes=peak_retx_bytes,
        peak_retx_entries=peak_retx_entries,
        peak_retx_occupancy_pct=peak_occupancy,
        peak_guard_entries=peak_guard,
        peak_trace_events=peak_trace,
        peak_registry_series=peak_series,
        final_retx_bytes=final.retx_bytes,
        final_trace_events=final.trace_events,
        growth_retx_bytes=growths["retx_bytes"],
        growth_guard_entries=growths["guard_entries"],
        growth_trace_events=growths["trace_events"],
        growth_registry_series=growths["registry_series"],
        budget_violations=len(violations),
        fleet_messages=fleet[0],
        fleet_delivered=fleet[1],
        fleet_unrecovered=fleet[2],
        fleet_flaps=fleet[3],
        fleet_marks_down=fleet[4],
    )
    # Structured health rides along for harnesses and the CLI; it is
    # not a dataclass field, so ``metrics()`` — and the byte-identical
    # BENCH_soak.json contract — are untouched.
    report.health = health
    return report


def write_bench(report: SoakReport, cfg: SoakConfig, directory: str | Path = ".") -> Path:
    """Write ``BENCH_soak.json`` — simulation-derived values only, so
    the file is byte-identical for identical seeds."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bench = BenchResult(
        name="soak",
        params={
            "duration_ns": cfg.duration_ns,
            "steady_interval_ns": cfg.steady_interval_ns,
            "poisson_mean_ns": cfg.poisson_mean_ns,
            "payload_size": cfg.payload_size,
            "wan_delay_ns": cfg.wan_delay_ns,
            "epochs": cfg.epochs,
        },
        seed=cfg.seed,
    )
    bench.record("soak", **report.metrics())
    return bench.write(directory)
