"""Receiver farms: EJ-FAT-style one-pipe → N-node fan-out.

The subsystem that takes the reproduction past its single receiving
DTN. One ingest pipe (sensor → DTN 1 → U280 → Tofino2) feeds a farm of
N receiver DTNs behind an in-network load balancer with a sticky
``(experiment, flow, event-window) → node`` calendar
(:mod:`~repro.fleet.farm`), a health-fed epoch-numbered control loop
carrying EJ-FAT-style sync messages into balancer table updates
(:mod:`~repro.fleet.control`), and an orchestrator scaling the
multi-flow harness to hundreds of flows over tens of nodes
(:mod:`~repro.fleet.orchestrator`).
"""

from .control import ControlStats, FleetController
from .farm import FarmConfig, FarmNode, FarmReport, ReceiverFarm, node_address
from .orchestrator import FleetConfig, FleetOrchestrator, FleetReport

__all__ = [
    "ControlStats",
    "FarmConfig",
    "FarmNode",
    "FarmReport",
    "FleetConfig",
    "FleetController",
    "FleetOrchestrator",
    "FleetReport",
    "ReceiverFarm",
    "node_address",
]
