"""A receiver farm: one ingest pipe fanned out over N sticky DTNs.

The pilot (Fig. 4) terminates every flow at a single DTN 2; EJ-FAT's
whole point is that one DAQ stream feeds a *farm* — an in-network load
balancer sprays event windows over N processing nodes, keeping every
fragment of one event on one node. :class:`ReceiverFarm` rebuilds the
pilot's ingest pipe and replaces the single receiving DTN with that
farm::

    sensor — DAQ switch — DTN 1 — [U280] — Tofino2 ═╦═ rx-dtn-0
             (identify)         (age-recover,       ╠═ rx-dtn-1
                                 HBM buffer)        ╠═ ...
                                      balancer ─────╩═ rx-dtn-N-1

Each receiver DTN is a full endpoint: its own :class:`MmtStack`,
per-flow receiver state, and NAK path back to the U280's HBM buffer.
The Tofino2 runs the :class:`~repro.dataplane.loadbalancer
.LoadBalancerProgram`, which owns the sticky ``(experiment, flow,
event-window) → node`` calendar; retransmissions pass through the same
steering, so repair traffic always lands on the window's bound node —
even after a crash remaps the window, because the calendar entry moves
*first* and the repair follows it.

Receivers are stripe consumers (``detect_gaps=False``): the windows
between their own belong to peers, so they never NAK spontaneously.
Loss recovery is driven by end-of-run reconciliation instead — the
farm knows the calendar, computes exactly which seqs each node's bound
windows still owe, and has that node request them
(:meth:`~repro.core.endpoint.MmtReceiver.request_sequences`); NAK
retries and backoff then run the normal receiver machinery.

Node health feeds the balancer through the epoch-numbered
:class:`~repro.fleet.control.FleetController` sync loop;
:meth:`crash_node` kills a node's access link and marks it down, after
which the next sync tick redirects its windows (see control.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.endpoint import MmtReceiver, MmtSender, MmtStack, ReceiverConfig
from ..core.features import MsgType
from ..core.header import make_experiment_id
from ..core.modes import ModeRegistry, pilot_registry
from ..core.retransmit import RetransmitBuffer
from ..dataplane.alveo import AlveoNic
from ..dataplane.loadbalancer import LoadBalancerProgram
from ..dataplane.pilot import PILOT_EXPERIMENT, U280_POSITION
from ..dataplane.programs import (
    AgeUpdateProgram,
    BufferTapProgram,
    ModeTransitionProgram,
    NearestBufferProgram,
    TransitionRule,
)
from ..dataplane.tofino import TofinoSwitch
from ..netsim.engine import Simulator
from ..netsim.host import Host
from ..netsim.link import Link
from ..netsim.packet import Packet
from ..netsim.queues import DrrScheduler
from ..netsim.topology import Topology
from ..netsim.units import MICROSECOND, MILLISECOND, gbps
from ..telemetry import (
    MetricsRegistry,
    scrape_balancer,
    scrape_element,
    scrape_receiver_flows,
    scrape_simulator,
    scrape_stack,
    scrape_topology,
)
from .control import FleetController


def node_address(index: int) -> str:
    """Deterministic per-node IP: the farm scales to hundreds of DTNs."""
    return f"10.40.{index // 200}.{index % 200 + 2}"


@dataclass
class FarmConfig:
    """Parameters for one receiver-farm build."""

    nodes: int = 4
    flows: int = 8
    #: Event-window size (seqs per balancer tick).
    window: int = 16
    link_rate_bps: int = gbps(100)
    #: One-way delay of each Tofino2 → receiver-DTN WAN leg.
    wan_delay_ns: int = 1 * MILLISECOND
    #: Random loss on the WAN legs.
    wan_loss_rate: float = 0.0
    daq_delay_ns: int = 5 * MICROSECOND
    age_budget_ns: int = 50 * MILLISECOND
    buffer_bytes: int = 512 * 1024 * 1024
    mtu_bytes: int = 9000
    slice_id: int = 0
    #: Control-loop sync cadence (EJ-FAT sync messages).
    sync_interval_ns: int = 100 * MICROSECOND
    #: What retransmissions do when their window's backend died between
    #: sync ticks (see LoadBalancerProgram).
    retx_policy: str = "rebind"
    #: Record every steering decision (property tests; off = zero cost).
    record_steering: bool = False
    #: Receiver tuning override (None builds stripe-consumer defaults).
    receiver: ReceiverConfig | None = None
    telemetry: bool = False
    trace: bool = False
    trace_capacity: int | None = None
    #: On-clock sampling period (None/0 = no sampler, zero overhead).
    sample_every_ns: int | None = None


@dataclass
class FarmNode:
    """One receiver DTN of the farm."""

    index: int
    host: Host
    stack: MmtStack
    receiver: MmtReceiver
    #: The Tofino2 ↔ node WAN leg (cut by :meth:`ReceiverFarm.crash_node`).
    link: Link
    delivered: int = 0
    bytes_delivered: int = 0
    retx_delivered: int = 0
    crashed_at_ns: int | None = None

    @property
    def address(self) -> str:
        return self.host.ip

    @property
    def alive(self) -> bool:
        return self.crashed_at_ns is None


@dataclass
class FarmReport:
    """Everything a farm run measured."""

    nodes: int
    flows: int
    messages_sent: int
    dtn1_relayed: int
    delivered: int
    naks_sent: int
    naks_served: int
    retransmissions: int
    unrecovered: int
    #: flow_id → the pilot-style per-flow accounting row.
    per_flow: dict[int, dict[str, int]]
    #: node index → delivery/steering shares.
    per_node: dict[int, dict[str, int]]
    #: Balancer + control-loop health.
    epoch: int
    table_updates: int
    redirects: int
    retx_rebinds: int
    syncs: int
    marks_down: int
    redirected_windows: int
    max_update_latency_ns: int
    #: Last delivery carried by a retransmission (0 = none).
    last_retx_delivery_ns: int = 0

    @property
    def complete(self) -> bool:
        """Every relayed message was delivered somewhere, none given up."""
        return all(
            row["unrecovered"] == 0 and row["delivered"] >= row["relayed"]
            for row in self.per_flow.values()
        )


class ReceiverFarm:
    """A ready-to-run build of the EJ-FAT-style fan-out testbed."""

    def __init__(
        self,
        sim: Simulator | None = None,
        config: FarmConfig | None = None,
        registry: ModeRegistry | None = None,
    ) -> None:
        self.sim = sim or Simulator(seed=7)
        self.config = config or FarmConfig()
        self.registry = registry or pilot_registry()
        if self.config.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.config.nodes}")
        if self.config.flows < 1:
            raise ValueError(f"flows must be >= 1, got {self.config.flows}")
        self.experiment_id = make_experiment_id(PILOT_EXPERIMENT, self.config.slice_id)
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        topo = Topology(self.sim)
        self.topology = topo

        self.sensor = topo.add_host("sensor", ip="10.10.0.2")
        self.daq_switch = topo.add_switch("daq-switch")
        self.dtn1 = topo.add_host("dtn1", ip="10.10.0.10")
        self.u280 = topo.add(
            AlveoNic.u280(self.sim, "alveo-u280", mac=topo.allocate_mac(), ip="10.20.0.2")
        )
        self.tofino = topo.add(
            TofinoSwitch(self.sim, "tofino2", mac=topo.allocate_mac(), ip="10.20.0.1")
        )

        rate = cfg.link_rate_bps
        short = 1 * MICROSECOND
        topo.connect(self.sensor, self.daq_switch, rate, cfg.daq_delay_ns, cfg.mtu_bytes)
        topo.connect(self.daq_switch, self.dtn1, rate, cfg.daq_delay_ns, cfg.mtu_bytes)
        topo.connect(self.dtn1, self.u280, rate, short, cfg.mtu_bytes)
        topo.connect(self.u280, self.tofino, rate, short, cfg.mtu_bytes)

        # The farm: one WAN leg per receiver DTN, loss on each leg.
        node_hosts: list[Host] = []
        node_links: list[Link] = []
        for index in range(cfg.nodes):
            host = topo.add_host(f"rx-dtn-{index}", ip=node_address(index))
            link = topo.connect(
                self.tofino, host, rate, cfg.wan_delay_ns, cfg.mtu_bytes,
                loss_rate=cfg.wan_loss_rate,
            )
            node_hosts.append(host)
            node_links.append(link)
        topo.install_routes()

        # --- programmable elements -----------------------------------------
        self.buffer: RetransmitBuffer = self.u280.attach_buffer(cfg.buffer_bytes)
        self.u280_transition = ModeTransitionProgram(
            self.registry,
            [
                TransitionRule(
                    from_config_id=self.registry.by_name("identify").config_id,
                    to_mode="age-recover",
                    buffer_addr=self.u280.ip,
                    age_budget_ns=cfg.age_budget_ns,
                )
            ],
            path_position=U280_POSITION,
        )
        self.u280_transition.install(self.u280)
        BufferTapProgram(buffer_addr=self.u280.ip).install(self.u280)
        AgeUpdateProgram().install(self.u280)

        self.tofino_age = AgeUpdateProgram()
        self.tofino_age.install(self.tofino)
        NearestBufferProgram(buffer_addr=self.u280.ip).install(self.tofino)
        self.balancer = LoadBalancerProgram(
            experiment_id=self.experiment_id,
            backends=[host.ip for host in node_hosts],
            window=cfg.window,
            retx_policy=cfg.retx_policy,
            record_log=cfg.record_steering,
        )
        self.balancer.install(self.tofino)

        # --- endpoints --------------------------------------------------------
        self.sensor_stack = MmtStack(self.sensor, self.registry)
        self.dtn1_stack = MmtStack(self.dtn1, self.registry)

        tagged = cfg.flows > 1

        def flow_kwargs(fid: int) -> dict:
            if not tagged:
                return {"flow": "fleet"}
            return {"flow": f"fleet-f{fid}", "flow_id": fid}

        self.sensor_senders: list[MmtSender] = [
            self.sensor_stack.create_sender(
                experiment_id=self.experiment_id,
                mode="identify",
                dst_mac=self.dtn1.mac,
                l2_port=next(iter(self.sensor.ports)),
                **flow_kwargs(fid),
            )
            for fid in range(cfg.flows)
        ]
        # DTN 1 re-originates toward the farm; the balancer re-steers
        # per window, so the nominal destination is just node 0.
        self.dtn1_senders: list[MmtSender] = [
            self.dtn1_stack.create_sender(
                experiment_id=self.experiment_id,
                mode="identify",
                dst_ip=node_hosts[0].ip,
                **flow_kwargs(fid),
            )
            for fid in range(cfg.flows)
        ]
        self.relay_drr: DrrScheduler | None = (
            DrrScheduler(quantum_bytes=cfg.mtu_bytes) if tagged else None
        )
        self._relay_drain_pending = False
        self.dtn1_receiver: MmtReceiver = self.dtn1_stack.bind_receiver(
            PILOT_EXPERIMENT, on_message=self._relay_at_dtn1
        )

        receiver_config = cfg.receiver or ReceiverConfig(
            detect_gaps=False,
            initial_rtt_ns=max(4 * cfg.wan_delay_ns, 1 * MILLISECOND),
        )
        self.nodes: list[FarmNode] = []
        self._node_by_address: dict[str, FarmNode] = {}
        for index, (host, link) in enumerate(zip(node_hosts, node_links)):
            stack = MmtStack(host, self.registry)
            receiver = stack.bind_receiver(
                PILOT_EXPERIMENT,
                on_message=self._deliver_fn(index),
                config=receiver_config,
            )
            node = FarmNode(
                index=index, host=host, stack=stack, receiver=receiver, link=link
            )
            self.nodes.append(node)
            self._node_by_address[host.ip] = node

        # --- control loop ---------------------------------------------------
        self.controller = FleetController(
            self.sim,
            self.balancer,
            fill_fn=self._node_fill,
            sync_interval_ns=cfg.sync_interval_ns,
        )

        # --- bookkeeping ------------------------------------------------------
        self.messages_sent = 0
        self.dtn1_relayed = 0
        self.messages_sent_by_flow: dict[int, int] = {f: 0 for f in range(cfg.flows)}
        self.dtn1_relayed_by_flow: dict[int, int] = {f: 0 for f in range(cfg.flows)}
        #: flow_id → unique seqs delivered anywhere in the farm.
        self.delivered_seqs: dict[int, set[int]] = {f: set() for f in range(cfg.flows)}
        #: flow_id → [(delivery time, payload size)], farm-wide.
        self.delivered_by_flow: dict[int, list[tuple[int, int]]] = {
            f: [] for f in range(cfg.flows)
        }
        #: Every delivery: (time, msg_type, node index, flow, seq).
        self.deliveries: list[tuple[int, MsgType, int, int, int]] = []
        self._stream_end_ns = 0

        # --- telemetry / tracing ---------------------------------------------
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if cfg.telemetry else None
        )
        self.tracer = None
        if cfg.trace:
            from ..trace import Tracer

            self.attach_tracer(Tracer(self.sim, capacity=cfg.trace_capacity))
        self.sampler = None
        if cfg.sample_every_ns:
            from ..obs import Sampler, watch_farm

            self.sampler = Sampler(self.sim, every_ns=cfg.sample_every_ns)
            watch_farm(self.sampler, self)
            self.sampler.arm()

    def attach_tracer(self, tracer) -> None:
        """Install a tracer on every hook point (pilot-style)."""
        self.tracer = tracer
        self.sim.tracer = tracer
        for node in self.topology.nodes.values():
            for port in node.ports.values():
                port.tracer = tracer
        for link in self.topology.links:
            link.tracer = tracer
        for element in (self.u280, self.tofino):
            element.tracer = tracer
        self.sensor_stack.tracer = tracer
        self.dtn1_stack.tracer = tracer
        for node in self.nodes:
            node.stack.tracer = tracer
        self.buffer.tracer = tracer
        self.balancer.tracer = tracer
        self.controller.tracer = tracer

    # -- health signals --------------------------------------------------------

    def _node_fill(self, address: str) -> int:
        """EJ-FAT sync fill: occupancy of the balancer's egress queue
        toward the node — the backlog the balancer itself can see."""
        node = self._node_by_address[address]
        for port in node.link.ends:
            if port.node is self.tofino:
                queue = port.queue
                return min(100, (queue.bytes_queued * 100) // queue.capacity_bytes)
        return 0

    def crash_node(self, index: int) -> None:
        """Kill a receiver DTN: its WAN leg drops everything in flight
        and the controller learns at the next sync tick (directory-style
        mark), which redirects its windows."""
        node = self.nodes[index]
        if node.crashed_at_ns is not None:
            return
        node.crashed_at_ns = self.sim.now
        node.link.up = False
        self.controller.mark_node_down(node.address)
        if self.tracer is not None:
            self.tracer.emit(
                "fleet.node_crash", node.host.name, at_ns=self.sim.now
            )

    def restore_node(self, index: int) -> None:
        """Bring a crashed node back (it rejoins for *new* windows)."""
        node = self.nodes[index]
        if node.crashed_at_ns is None:
            return
        node.crashed_at_ns = None
        node.link.up = True
        self.controller.mark_node_up(node.address)

    def drain_node(self, index: int) -> None:
        """Maintenance drain: bound windows finish, new windows avoid."""
        self.controller.drain(self.nodes[index].address)

    # -- dataflow callbacks ----------------------------------------------------

    def _relay_at_dtn1(self, packet: Packet, header) -> None:
        self.dtn1_relayed += 1
        fid = header.flow_id or 0
        self.dtn1_relayed_by_flow[fid] = self.dtn1_relayed_by_flow.get(fid, 0) + 1
        meta = {"sent_at": packet.meta.get("sent_at", self.sim.now)}
        if self.relay_drr is None:
            self.dtn1_senders[0].send(packet.payload_size, payload=packet.payload, meta=meta)
            return
        self.relay_drr.enqueue(
            fid, (packet.payload_size, packet.payload, meta), packet.size_bytes
        )
        if not self._relay_drain_pending:
            self._relay_drain_pending = True
            self.sim.schedule(0, self._drain_relay)

    def _drain_relay(self) -> None:
        assert self.relay_drr is not None
        self._relay_drain_pending = False
        while True:
            served = self.relay_drr.dequeue()
            if served is None:
                return
            fid, (payload_size, payload, meta) = served
            self.dtn1_senders[fid].send(payload_size, payload=payload, meta=meta)

    def _deliver_fn(self, node_index: int):
        def deliver(packet: Packet, header) -> None:
            node = self.nodes[node_index]
            fid = header.flow_id or 0
            node.delivered += 1
            node.bytes_delivered += packet.payload_size
            if header.msg_type == MsgType.RETX_DATA:
                node.retx_delivered += 1
            self.delivered_seqs[fid].add(header.seq)
            self.delivered_by_flow[fid].append((self.sim.now, packet.payload_size))
            self.deliveries.append(
                (self.sim.now, header.msg_type, node_index, fid, header.seq)
            )

        return deliver

    # -- driving ---------------------------------------------------------------

    def send_message(
        self, payload_size: int = 8000, flow: int = 0, payload: bytes | None = None
    ) -> None:
        """Emit one DAQ message from the sensor right now."""
        self.sensor_senders[flow].send(payload_size, payload=payload)
        self.messages_sent += 1
        self.messages_sent_by_flow[flow] = self.messages_sent_by_flow.get(flow, 0) + 1
        self._stream_end_ns = max(self._stream_end_ns, self.sim.now)

    def send_stream(
        self,
        count: int,
        payload_size: int = 8000,
        interval_ns: int = 1_000,
        flow: int = 0,
    ) -> None:
        """Schedule a steady stream of ``count`` messages from the sensor."""
        for i in range(count):
            self.sim.schedule(i * interval_ns, self.send_message, payload_size, flow)
        if count:
            self._stream_end_ns = max(
                self._stream_end_ns, self.sim.now + (count - 1) * interval_ns
            )

    def run(
        self,
        control_until_ns: int | None = None,
        extra_ns: int = 0,
        reconcile: bool = True,
    ) -> FarmReport:
        """Run to quiescence (plus ``extra_ns``), reconcile, and report.

        The control loop's sync ticks cover the traffic span (known from
        scheduled streams, or ``control_until_ns`` when a generator
        emits lazily) plus two settle intervals; liveness marks past
        that horizon still trigger one catch-up tick each.
        """
        horizon = max(self._stream_end_ns, control_until_ns or 0)
        self.controller.run_until(horizon + 2 * self.config.sync_interval_ns)
        self.sim.run(until_ns=self.sim.now + extra_ns if extra_ns else None)
        self.sim.run()
        if reconcile:
            self.reconcile()
            self.sim.run()
        return self.report()

    def reconcile(self) -> int:
        """Calendar-directed end-of-run recovery.

        For every flow, every relayed-but-undelivered seq is requested
        at the node its window is bound to *now* (a window remapped by
        redirect-on-crash is requested at its new owner, and the repair
        is steered there too). Returns how many seqs were requested.
        """
        requested = 0
        for fid in range(self.config.flows):
            expected = self.dtn1_relayed_by_flow.get(fid, 0)
            delivered = self.delivered_seqs[fid]
            per_node: dict[int, list[int]] = {}
            for seq in range(expected):
                if seq in delivered:
                    continue
                # route() (not backend_for) so stale bindings to dead
                # nodes are rebound on discovery.
                address = self.balancer.route(fid, seq)
                node = self._node_by_address[address]
                per_node.setdefault(node.index, []).append(seq)
            for index, seqs in sorted(per_node.items()):
                node = self.nodes[index]
                if not node.alive:
                    continue  # no live backend at all: nothing to ask
                requested += node.receiver.request_sequences(
                    self.experiment_id, seqs, flow_id=fid, buffer_addr=self.u280.ip
                )
        return requested

    # -- reporting -------------------------------------------------------------

    def collect_telemetry(self) -> MetricsRegistry:
        """Scrape the whole farm into the registry (end of run)."""
        if self.metrics is None:
            raise RuntimeError("telemetry disabled; build with FarmConfig(telemetry=True)")
        registry = self.metrics
        scrape_simulator(self.sim, registry)
        scrape_topology(self.topology, registry, now_ns=self.sim.now)
        for element in (self.u280, self.tofino):
            scrape_element(element, registry)
        scrape_stack(self.sensor_stack, registry)
        scrape_stack(self.dtn1_stack, registry)
        for node in self.nodes:
            scrape_stack(node.stack, registry)
            scrape_receiver_flows(node.receiver, registry, host=node.host.name)
        scrape_balancer(self.balancer, registry, element=self.tofino.name)
        registry.counter("fleet_controller_syncs").set_total(self.controller.stats.syncs)
        registry.counter("fleet_controller_marks_down").set_total(
            self.controller.stats.marks_down
        )
        registry.counter("fleet_controller_redirected_windows").set_total(
            self.controller.stats.redirected_windows
        )
        return registry

    def flow_report(self) -> dict[int, dict[str, int]]:
        """Pilot-style per-flow accounting, summed across the farm."""
        report: dict[int, dict[str, int]] = {}
        summaries = [node.receiver.flow_summary() for node in self.nodes]
        for fid in range(self.config.flows):
            rows = [s.get((self.experiment_id, fid), {}) for s in summaries]
            deliveries = self.delivered_by_flow.get(fid, [])
            report[fid] = {
                "sent": self.messages_sent_by_flow.get(fid, 0),
                "relayed": self.dtn1_relayed_by_flow.get(fid, 0),
                "delivered": len(self.delivered_seqs[fid]),
                "bytes_delivered": sum(r.get("bytes_delivered", 0) for r in rows),
                "naks_sent": sum(r.get("naks_sent", 0) for r in rows),
                "unrecovered": sum(r.get("unrecovered", 0) for r in rows),
                "retransmissions": sum(r.get("retransmissions", 0) for r in rows),
                "first_delivery_ns": deliveries[0][0] if deliveries else 0,
                "last_delivery_ns": deliveries[-1][0] if deliveries else 0,
            }
        return report

    def node_report(self) -> dict[int, dict[str, int]]:
        """Per-node delivery and steering shares."""
        report: dict[int, dict[str, int]] = {}
        for node in self.nodes:
            backend = self.balancer.backends[node.address]
            report[node.index] = {
                "delivered": node.delivered,
                "bytes_delivered": node.bytes_delivered,
                "retx_delivered": node.retx_delivered,
                "windows_assigned": backend.windows_assigned,
                "packets_steered": backend.packets_steered,
                "bytes_steered": backend.bytes_steered,
                "fill_pct": backend.fill_pct,
                "alive": int(node.alive),
            }
        return report

    def report(self) -> FarmReport:
        per_flow = self.flow_report()
        retx_times = [t for t, m, *_ in self.deliveries if m == MsgType.RETX_DATA]
        return FarmReport(
            nodes=self.config.nodes,
            flows=self.config.flows,
            messages_sent=self.messages_sent,
            dtn1_relayed=self.dtn1_relayed,
            delivered=sum(len(s) for s in self.delivered_seqs.values()),
            naks_sent=sum(row["naks_sent"] for row in per_flow.values()),
            naks_served=self.u280.stats.naks_served,
            retransmissions=sum(row["retransmissions"] for row in per_flow.values()),
            unrecovered=sum(row["unrecovered"] for row in per_flow.values()),
            per_flow=per_flow,
            per_node=self.node_report(),
            epoch=self.balancer.epoch,
            table_updates=self.balancer.table_updates,
            redirects=self.balancer.redirects,
            retx_rebinds=self.balancer.retx_rebinds,
            syncs=self.controller.stats.syncs,
            marks_down=self.controller.stats.marks_down,
            redirected_windows=self.controller.stats.redirected_windows,
            max_update_latency_ns=self.controller.stats.max_update_latency_ns,
            last_retx_delivery_ns=max(retx_times, default=0),
        )
