"""The farm's epoch-numbered control loop (EJ-FAT sync messages).

EJ-FAT's receivers send *sync* messages — periodic fill/backpressure
reports — and the balancer's control plane folds them into table
updates. Transport Layer Networking (Kumar et al.) frames those tables
as transport state: they must react to receiver health, not just
initial placement. :class:`FleetController` is that loop for the
reproduction:

- every ``sync_interval_ns`` it samples each live node's fill level
  (the balancer-egress queue toward the node — the exact backlog the
  real balancer FPGA sees building up) and calls
  :meth:`~repro.dataplane.loadbalancer.LoadBalancerProgram.report_load`;
- liveness changes arrive as BufferDirectory-style marks
  (:meth:`mark_node_down` / :meth:`mark_node_up`, typically from
  :meth:`~repro.fleet.farm.ReceiverFarm.crash_node` or a fault plan)
  and are *applied at the next sync tick* — the measured gap between
  the mark and its table update is the table-update latency the
  orchestrator reports;
- :meth:`drain` / :meth:`undrain` are operator actions and take effect
  immediately (maintenance is not racing a failure detector).

Every table mutation bumps the balancer's epoch, so steering decisions
are attributable to a table generation — the property the conformance
suite checks (one node per seq per epoch).

The loop is scheduled over a bounded horizon (:meth:`run_until`), not
as a free-running timer: chaos and benchmark runs drive the simulator
to quiescence, and an immortal timer would never let them get there.
A liveness mark arriving past the horizon schedules one catch-up tick,
so late crashes are still detected within one sync interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..dataplane.loadbalancer import LoadBalancerProgram
from ..netsim.engine import Simulator
from ..netsim.units import MICROSECOND


@dataclass
class ControlStats:
    """What the control loop did, in plain ints."""

    syncs: int = 0
    fill_reports: int = 0
    marks_down: int = 0
    marks_up: int = 0
    drains: int = 0
    #: Calendar entries remapped by redirect-on-crash.
    redirected_windows: int = 0
    #: ns from each liveness mark to the sync tick that applied it.
    update_latency_ns: list[int] = field(default_factory=list)

    @property
    def max_update_latency_ns(self) -> int:
        return max(self.update_latency_ns, default=0)


class FleetController:
    """Health-fed balancer table maintenance for a receiver farm."""

    def __init__(
        self,
        sim: Simulator,
        balancer: LoadBalancerProgram,
        fill_fn: Callable[[str], int],
        sync_interval_ns: int = 100 * MICROSECOND,
    ) -> None:
        if sync_interval_ns <= 0:
            raise ValueError(f"sync_interval_ns must be positive, got {sync_interval_ns}")
        self.sim = sim
        self.balancer = balancer
        self.fill_fn = fill_fn
        self.sync_interval_ns = sync_interval_ns
        self.stats = ControlStats()
        #: address → time the down-mark was requested (awaiting a tick).
        self._pending_down: dict[str, int] = {}
        self._pending_up: dict[str, int] = {}
        #: address → declared dead (controller's liveness view).
        self._down: set[str] = set()
        self._scheduled_until = -1
        self.tracer = None

    # -- scheduling -----------------------------------------------------------

    def run_until(self, until_ns: int) -> int:
        """Schedule sync ticks every interval up to ``until_ns``
        (absolute); returns how many ticks were scheduled. Idempotent
        for overlapping horizons — already-covered ticks are not
        duplicated."""
        first = max(
            self.sim.now + self.sync_interval_ns,
            self._scheduled_until + self.sync_interval_ns,
        )
        count = 0
        at = first
        while at <= until_ns:
            self.sim.schedule(at - self.sim.now, self._sync)
            self._scheduled_until = at
            at += self.sync_interval_ns
            count += 1
        return count

    def _ensure_tick(self) -> None:
        """A mark arriving past the horizon still gets detected: extend
        the schedule by one tick."""
        if self._scheduled_until < self.sim.now + 1:
            self.sim.schedule(self.sync_interval_ns, self._sync)
            self._scheduled_until = self.sim.now + self.sync_interval_ns

    # -- liveness marks (BufferDirectory-style) -------------------------------

    def mark_node_down(self, address: str) -> None:
        """A node stopped responding; applied at the next sync tick."""
        if address in self._down or address in self._pending_down:
            return
        self._pending_up.pop(address, None)
        self._pending_down[address] = self.sim.now
        self._ensure_tick()

    def mark_node_up(self, address: str) -> None:
        """A node came back; applied at the next sync tick."""
        if address not in self._down and address not in self._pending_down:
            return
        self._pending_down.pop(address, None)
        self._pending_up.setdefault(address, self.sim.now)
        self._ensure_tick()

    def node_alive(self, address: str) -> bool:
        return address not in self._down and address not in self._pending_down

    # -- operator actions -----------------------------------------------------

    def drain(self, address: str) -> None:
        """Maintenance drain: effective immediately (not tick-aligned)."""
        self.balancer.drain(address)
        self.stats.drains += 1

    def undrain(self, address: str) -> None:
        self.balancer.undrain(address)

    # -- the sync tick --------------------------------------------------------

    def _sync(self) -> None:
        self.stats.syncs += 1
        for address, marked_at in sorted(self._pending_down.items()):
            moved = self.balancer.mark_down(address)
            self._down.add(address)
            self.stats.marks_down += 1
            self.stats.redirected_windows += len(moved)
            self.stats.update_latency_ns.append(self.sim.now - marked_at)
        self._pending_down.clear()
        for address, marked_at in sorted(self._pending_up.items()):
            self.balancer.mark_up(address)
            self._down.discard(address)
            self.stats.marks_up += 1
            self.stats.update_latency_ns.append(self.sim.now - marked_at)
        self._pending_up.clear()
        for address in self.balancer.backends:
            if address in self._down:
                continue
            self.balancer.report_load(address, self.fill_fn(address))
            self.stats.fill_reports += 1
        if self.tracer is not None:
            self.tracer.emit(
                "balancer.sync", "fleet-controller",
                epoch=self.balancer.epoch, syncs=self.stats.syncs,
            )
