"""Fleet-scale concurrent runs: hundreds of flows over tens of nodes.

:class:`FleetOrchestrator` is :class:`~repro.integration.multiflow
.MultiFlowOrchestrator` pointed at a :class:`~repro.fleet.farm
.ReceiverFarm` instead of the single-DTN pilot — same alternating DAQ
workload shapes (steady ICEBERG-style elephants on even flows, bursty
synthetic-DUNE events on odd), same per-flow accounting, but the
delivery side is a farm and the run is judged on the farm's axes too:

- per-node packet/byte shares and the Jain fairness index across
  *live* nodes (is the balancer actually balancing?);
- table-update latency (liveness mark → applied table update);
- redirect time-to-recover: after a mid-run node crash, how long until
  the last repair retransmission lands on the windows' new owners;
- per-flow FCT (first → last delivery) and unrecovered counts.

A crash can be scheduled declaratively (``crash_node`` +
``crash_at_ns``) so benchmark and chaos runs stay reproducible: same
seed, same crash instant, byte-identical steering decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.features import MsgType
from ..daq.generators import DaqStreamSource
from ..integration.multiflow import MultiFlowOrchestrator, jain_fairness
from ..netsim.engine import Simulator
from ..netsim.units import MILLISECOND, SECOND, gbps
from .farm import FarmConfig, FarmReport, ReceiverFarm


@dataclass
class FleetConfig:
    """Parameters for one fleet-scale concurrent run."""

    nodes: int = 4
    flows: int = 16
    seed: int = 7
    #: Generator window: every flow emits messages in ``[0, duration)``.
    duration_ns: int = 2 * MILLISECOND
    message_bytes: int = 4000
    steady_rate_bps: int = gbps(2)
    event_rate_hz: float = 50_000.0
    messages_per_event: int = 3
    #: Farm overrides; ``nodes``/``flows`` here always win.
    farm: FarmConfig | None = None
    #: Index of a node to crash mid-run (None = healthy run).
    crash_node: int | None = None
    crash_at_ns: int = 1 * MILLISECOND

    def build_farm_config(self) -> FarmConfig:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.flows < 1:
            raise ValueError(f"flows must be >= 1, got {self.flows}")
        cfg = self.farm or FarmConfig()
        cfg.nodes = self.nodes
        cfg.flows = self.flows
        return cfg


@dataclass
class FleetReport:
    """What a fleet run measured, per flow, per node, and in aggregate."""

    nodes: int
    flows: int
    duration_ns: int
    farm: FarmReport
    #: flow_id → bytes the generator actually offered.
    offered_bytes: dict[int, int]
    per_flow: dict[int, dict[str, int]]
    per_node: dict[int, dict[str, int]]
    aggregate_goodput_bps: float
    #: Jain index over per-flow normalized goodput (delivered/offered).
    flow_fairness: float
    #: Jain index over bytes delivered per *live* node.
    node_fairness: float
    #: max − min of per-flow last-delivery times.
    completion_spread_ns: int
    #: max − min of per-flow FCTs (first → last delivery).
    fct_ns: dict[int, int] = field(default_factory=dict)
    #: ns from the scheduled crash to the last repair retransmission
    #: delivered anywhere (0 = no crash, or nothing needed repair).
    recovery_ns: int = 0

    @property
    def complete(self) -> bool:
        """Every flow delivered everything relayed, nothing given up."""
        return all(
            row["unrecovered"] == 0 and row["delivered"] >= row["relayed"]
            for row in self.per_flow.values()
        )


class FleetOrchestrator(MultiFlowOrchestrator):
    """Drives N concurrent DAQ flows through one shared receiver farm."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.farm = ReceiverFarm(sim=self.sim, config=cfg.build_farm_config())
        #: The inherited ``_send_fn`` targets ``self.testbed`` — the
        #: farm speaks the same ``send_message(size, flow, payload)``.
        self.testbed = self.farm
        self.sources: list[DaqStreamSource] = [
            DaqStreamSource(
                self.sim,
                self.process_for(fid),
                self._send_fn(fid),
                cfg.duration_ns,
                rng_name=f"mmt-flow-{fid}",
            )
            for fid in range(cfg.flows)
        ]

    def run(self) -> FleetReport:
        cfg = self.config
        for source in self.sources:
            source.start(0)
        if cfg.crash_node is not None:
            self.sim.schedule(cfg.crash_at_ns, self.farm.crash_node, cfg.crash_node)
        farm_report = self.farm.run(control_until_ns=cfg.duration_ns)
        per_flow = farm_report.per_flow
        per_node = farm_report.per_node
        offered = {fid: self.sources[fid].bytes_emitted for fid in range(cfg.flows)}

        normalized = [
            per_flow[fid]["bytes_delivered"] / offered[fid] if offered[fid] else 0.0
            for fid in range(cfg.flows)
        ]
        last_deliveries = [
            per_flow[fid]["last_delivery_ns"]
            for fid in range(cfg.flows)
            if per_flow[fid]["delivered"]
        ]
        total_bytes = sum(row["bytes_delivered"] for row in per_flow.values())
        span_ns = max(last_deliveries) if last_deliveries else 0
        goodput = total_bytes * 8 * SECOND / span_ns if span_ns else 0.0
        spread = max(last_deliveries) - min(last_deliveries) if last_deliveries else 0
        fct = {
            fid: per_flow[fid]["last_delivery_ns"] - per_flow[fid]["first_delivery_ns"]
            for fid in range(cfg.flows)
            if per_flow[fid]["delivered"]
        }

        live_bytes = [
            row["bytes_delivered"] for row in per_node.values() if row["alive"]
        ]

        recovery_ns = 0
        if cfg.crash_node is not None:
            crashed_at = self.farm.nodes[cfg.crash_node].crashed_at_ns
            if crashed_at is not None:
                repairs = [
                    t
                    for t, msg_type, *_ in self.farm.deliveries
                    if msg_type == MsgType.RETX_DATA and t >= crashed_at
                ]
                if repairs:
                    recovery_ns = max(repairs) - crashed_at

        return FleetReport(
            nodes=cfg.nodes,
            flows=cfg.flows,
            duration_ns=cfg.duration_ns,
            farm=farm_report,
            offered_bytes=offered,
            per_flow=per_flow,
            per_node=per_node,
            aggregate_goodput_bps=goodput,
            flow_fairness=jain_fairness(normalized),
            node_fairness=jain_fairness(live_bytes),
            completion_spread_ns=spread,
            fct_ns=fct,
            recovery_ns=recovery_ns,
        )
