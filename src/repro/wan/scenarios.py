"""End-to-end scenarios: today's pipeline (Fig. 2) vs multi-modal (Fig. 3).

Both scenarios share one physical topology — the paper's stages
DAQ → WAN → storage → campus::

    sensor - daqsw - dtn1 - [nic1] - wanR1 ===WAN=== wanR2 - [nic2] - dtn2
                                                              |
                                      researcher - campusR ---+ (distribution WAN)

- :class:`TodayScenario` (Fig. 2): UDP on the DAQ leg, terminated at
  DTN 1; a tuned TCP stream DTN 1 → DTN 2 (storage); a second tuned
  TCP stream DTN 2 → researcher. Every stage terminates, buffers, and
  re-originates — the complexity the paper calls out.
- :class:`MultimodalScenario` (Fig. 3): MMT end to end. A smartNIC at
  DTN 1 transitions mode 0→1 (sequence numbers, nearest-buffer,
  age-tracking), the WAN element refreshes buffers/ages, a smartNIC at
  DTN 2 transitions 1→2 (deadline) and hosts the distribution buffer.
  Optionally the WAN element *duplicates* the stream straight to the
  researcher (§5.1: "streams can be duplicated in the network"), so
  fresh data skips storage termination entirely.

Both report the same :class:`ScenarioResult` so benches can print
side-by-side rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.tcp import TcpConfig, TcpStack
from ..baselines.tuning import profile as tuning_profile
from ..baselines.udp import UdpStack
from ..core.endpoint import MmtStack, ReceiverConfig
from ..core.header import make_experiment_id
from ..core.modes import extended_registry
from ..dataplane.alveo import AlveoNic
from ..dataplane.programs import (
    AgeUpdateProgram,
    BufferTapProgram,
    DuplicationProgram,
    ModeTransitionProgram,
    NearestBufferProgram,
    TransitionRule,
)
from ..dataplane.tofino import TofinoSwitch
from ..netsim.engine import Simulator
from ..netsim.topology import Topology
from ..netsim.units import MICROSECOND, MILLISECOND, gbps

SCENARIO_EXPERIMENT = 77


@dataclass
class ScenarioConfig:
    """Shared knobs for both scenario flavours."""

    message_bytes: int = 8192
    message_count: int = 2000
    #: Sensor emission interval (sets offered load).
    message_interval_ns: int = 2_000
    link_rate_bps: int = gbps(100)
    #: One-way WAN delay DTN1→storage, and storage→campus.
    wan_delay_ns: int = 25 * MILLISECOND
    campus_delay_ns: int = 5 * MILLISECOND
    wan_loss_rate: float = 0.0
    tcp_profile: str = "100g"
    #: Multi-modal only: duplicate the stream in-network to the
    #: researcher instead of relaying from storage.
    duplicate_to_researcher: bool = False
    #: Processing time at the storage facility before data is forwarded
    #: to researchers (ingest, batching, catalogue update). Models the
    #: termination overhead Fig. 2's store-then-distribute path pays.
    storage_forward_delay_ns: int = 0
    age_budget_ns: int = 200 * MILLISECOND
    mtu_bytes: int = 9000


@dataclass
class ScenarioResult:
    """What a scenario run measured."""

    sent: int
    storage_delivered: int
    researcher_delivered: int
    #: Per-message sensor→storage latency (ns), delivery order.
    storage_latencies_ns: list[int]
    #: Per-message sensor→researcher latency (ns), delivery order.
    researcher_latencies_ns: list[int]
    #: Time from first send until the last message reached storage.
    fct_storage_ns: int | None
    fct_researcher_ns: int | None
    extras: dict = field(default_factory=dict)


def _build_shared(topology: Topology, cfg: ScenarioConfig) -> dict:
    """The physical skeleton both scenarios run over."""
    nodes = {}
    nodes["sensor"] = topology.add_host("sensor", ip="10.1.0.2")
    nodes["daqsw"] = topology.add_switch("daq-switch")
    nodes["dtn1"] = topology.add_host("dtn1", ip="10.1.0.10")
    nodes["wan_r1"] = topology.add_router("wan-r1")
    nodes["wan_r2"] = topology.add_router("wan-r2")
    nodes["dtn2"] = topology.add_host("dtn2", ip="10.2.0.10")
    nodes["campus_r"] = topology.add_router("campus-r")
    nodes["researcher"] = topology.add_host("researcher", ip="10.3.0.2")

    rate = cfg.link_rate_bps
    short = 1 * MICROSECOND
    mtu = cfg.mtu_bytes
    topology.connect(nodes["sensor"], nodes["daqsw"], rate, short, mtu)
    topology.connect(nodes["daqsw"], nodes["dtn1"], rate, short, mtu)
    return nodes


class TodayScenario:
    """Fig. 2: UDP in the DAQ net, tuned TCP across each WAN stage."""

    UDP_PORT = 9000
    TCP_PORT_STORAGE = 5001
    TCP_PORT_CAMPUS = 5002

    def __init__(self, sim: Simulator | None = None, config: ScenarioConfig | None = None):
        self.sim = sim or Simulator(seed=7)
        self.cfg = config or ScenarioConfig()
        cfg = self.cfg
        topo = Topology(self.sim)
        self.topology = topo
        n = _build_shared(topo, cfg)
        self.nodes = n
        rate, mtu, short = cfg.link_rate_bps, cfg.mtu_bytes, 1 * MICROSECOND
        topo.connect(n["dtn1"], n["wan_r1"], rate, short, mtu)
        self.wan_link = topo.connect(
            n["wan_r1"], n["wan_r2"], rate, cfg.wan_delay_ns, mtu, loss_rate=cfg.wan_loss_rate
        )
        topo.connect(n["wan_r2"], n["dtn2"], rate, short, mtu)
        topo.connect(n["dtn2"], n["campus_r"], rate, cfg.campus_delay_ns, mtu)
        topo.connect(n["campus_r"], n["researcher"], rate, short, mtu)
        topo.install_routes()

        tcp_config: TcpConfig = tuning_profile(cfg.tcp_profile)
        # TCP MSS must fit the topology MTU.
        tcp_config.mss = min(tcp_config.mss, mtu - 40)

        self.sensor_udp = UdpStack(n["sensor"])
        self.dtn1_udp = UdpStack(n["dtn1"])
        self.dtn1_tcp = TcpStack(n["dtn1"])
        self.dtn2_tcp = TcpStack(n["dtn2"])
        self.researcher_tcp = TcpStack(n["researcher"])

        self.send_times: list[int] = []
        self.storage_latencies: list[int] = []
        self.researcher_latencies: list[int] = []
        self._storage_count = 0
        self._researcher_count = 0
        self.fct_storage: int | None = None
        self.fct_researcher: int | None = None
        self._first_send: int | None = None

        # DAQ leg: sensor UDP → DTN1.
        self.sensor_socket = self.sensor_udp.bind(4000)
        self.dtn1_udp.bind(self.UDP_PORT, on_datagram=self._at_dtn1)

        # WAN leg: DTN1 → DTN2 (storage).
        self.dtn2_tcp.listen(
            self.TCP_PORT_STORAGE, config=tcp_config, on_connection=self._storage_conn
        )
        self.conn_wan = self.dtn1_tcp.connect(
            n["dtn2"].ip, self.TCP_PORT_STORAGE, config=tcp_config
        )
        # Campus leg: DTN2 → researcher.
        self.researcher_tcp.listen(
            self.TCP_PORT_CAMPUS, config=tcp_config, on_connection=self._campus_conn
        )
        self.conn_campus = self.dtn2_tcp.connect(
            n["researcher"].ip, self.TCP_PORT_CAMPUS, config=tcp_config
        )

    # -- plumbing ---------------------------------------------------------

    def _at_dtn1(self, packet, _socket) -> None:
        """Terminate UDP; stream the message into the WAN TCP pipe."""
        self.conn_wan.send_message(self.cfg.message_bytes)

    def _storage_conn(self, conn) -> None:
        conn.on_delivered = self._at_storage

    def _campus_conn(self, conn) -> None:
        conn.on_delivered = self._at_researcher

    def _at_storage(self, _nbytes: int, total: int) -> None:
        m = self.cfg.message_bytes
        while (self._storage_count + 1) * m <= total:
            i = self._storage_count
            if i < len(self.send_times):
                self.storage_latencies.append(self.sim.now - self.send_times[i])
            self._storage_count += 1
            self.fct_storage = self.sim.now
            if self.cfg.storage_forward_delay_ns:
                self.sim.schedule(
                    self.cfg.storage_forward_delay_ns, self.conn_campus.send_message, m
                )
            else:
                self.conn_campus.send_message(m)

    def _at_researcher(self, _nbytes: int, total: int) -> None:
        m = self.cfg.message_bytes
        while (self._researcher_count + 1) * m <= total:
            i = self._researcher_count
            if i < len(self.send_times):
                self.researcher_latencies.append(self.sim.now - self.send_times[i])
            self._researcher_count += 1
            self.fct_researcher = self.sim.now

    # -- driving -------------------------------------------------------------

    def _send_one(self) -> None:
        self.send_times.append(self.sim.now)
        if self._first_send is None:
            self._first_send = self.sim.now
        self.sensor_socket.send_to(
            self.nodes["dtn1"].ip,
            self.UDP_PORT,
            self.cfg.message_bytes,
            meta={"flow": "daq-udp"},
        )

    def run(self, settle_ns: int = 10 * MILLISECOND) -> ScenarioResult:
        """Emit the configured stream and run to quiescence."""
        for i in range(self.cfg.message_count):
            self.sim.schedule(
                settle_ns + i * self.cfg.message_interval_ns, self._send_one
            )
        self.sim.run()
        origin = self._first_send or 0
        return ScenarioResult(
            sent=len(self.send_times),
            storage_delivered=self._storage_count,
            researcher_delivered=self._researcher_count,
            storage_latencies_ns=self.storage_latencies,
            researcher_latencies_ns=self.researcher_latencies,
            fct_storage_ns=None if self.fct_storage is None else self.fct_storage - origin,
            fct_researcher_ns=(
                None if self.fct_researcher is None else self.fct_researcher - origin
            ),
            extras={
                "tcp_wan_retransmits": self.conn_wan.stats.retransmits,
                "tcp_wan_timeouts": self.conn_wan.stats.timeouts,
                "tcp_wan_fast_retransmits": self.conn_wan.stats.fast_retransmits,
                "tcp_campus_retransmits": self.conn_campus.stats.retransmits,
                "wan_lost": self.wan_link.stats.lost_random
                + self.wan_link.stats.lost_corruption,
            },
        )


class MultimodalScenario:
    """Fig. 3: MMT end to end with in-network buffers and duplication."""

    def __init__(self, sim: Simulator | None = None, config: ScenarioConfig | None = None):
        self.sim = sim or Simulator(seed=7)
        self.cfg = config or ScenarioConfig()
        cfg = self.cfg
        self.registry = extended_registry()
        self.experiment_id = make_experiment_id(SCENARIO_EXPERIMENT)
        topo = Topology(self.sim)
        self.topology = topo
        n = _build_shared(topo, cfg)
        self.nodes = n
        rate, mtu, short = cfg.link_rate_bps, cfg.mtu_bytes, 1 * MICROSECOND

        self.nic1 = topo.add(
            AlveoNic.u280(self.sim, "nic1", mac=topo.allocate_mac(), ip="10.1.0.20")
        )
        self.wan_sw = topo.add(
            TofinoSwitch(self.sim, "wan-tofino", mac=topo.allocate_mac(), ip="10.9.0.1")
        )
        self.nic2 = topo.add(
            AlveoNic.u55c(self.sim, "nic2", mac=topo.allocate_mac(), ip="10.2.0.20")
        )

        topo.connect(n["dtn1"], self.nic1, rate, short, mtu)
        topo.connect(self.nic1, n["wan_r1"], rate, short, mtu)
        self.wan_link = topo.connect(
            n["wan_r1"], self.wan_sw, rate, cfg.wan_delay_ns, mtu, loss_rate=cfg.wan_loss_rate
        )
        topo.connect(self.wan_sw, n["wan_r2"], rate, short, mtu)
        topo.connect(n["wan_r2"], self.nic2, rate, short, mtu)
        topo.connect(self.nic2, n["dtn2"], rate, short, mtu)
        topo.connect(n["dtn2"], n["campus_r"], rate, cfg.campus_delay_ns, mtu)
        topo.connect(n["campus_r"], n["researcher"], rate, short, mtu)
        # The duplication path: the WAN element can reach the campus
        # directly (Fig. 3's in-network copy to downstream researchers).
        topo.connect(self.wan_sw, n["campus_r"], rate, cfg.campus_delay_ns, mtu)
        topo.install_routes()

        # --- programs ------------------------------------------------------
        self.buffer1 = self.nic1.attach_buffer(512 * 1024 * 1024)
        transition_mode = "fanout" if cfg.duplicate_to_researcher else "age-recover"
        self.nic1_transition = ModeTransitionProgram(
            self.registry,
            [
                TransitionRule(
                    from_config_id=0,
                    to_mode=transition_mode,
                    buffer_addr=self.nic1.ip,
                    age_budget_ns=cfg.age_budget_ns,
                    dup_group=SCENARIO_EXPERIMENT & 0xFFFF,
                    dup_copies=1,
                )
            ],
        )
        self.nic1_transition.install(self.nic1)
        BufferTapProgram(buffer_addr=self.nic1.ip).install(self.nic1)
        AgeUpdateProgram().install(self.nic1)

        self.wan_age = AgeUpdateProgram()
        self.wan_age.install(self.wan_sw)
        if cfg.duplicate_to_researcher:
            self.duplication = DuplicationProgram(
                {SCENARIO_EXPERIMENT & 0xFFFF: [n["researcher"].ip]}
            )
            self.duplication.install(self.wan_sw)
        else:
            NearestBufferProgram(buffer_addr=self.nic1.ip).install(self.wan_sw)

        AgeUpdateProgram().install(self.nic2)

        # --- endpoints ----------------------------------------------------------
        self.sensor_stack = MmtStack(n["sensor"], self.registry)
        self.dtn1_stack = MmtStack(n["dtn1"], self.registry)
        self.dtn2_stack = MmtStack(n["dtn2"], self.registry)
        self.researcher_stack = MmtStack(n["researcher"], self.registry)

        self.send_times: list[int] = []
        self.storage_latencies: list[int] = []
        self.researcher_latencies: list[int] = []
        self.fct_storage: int | None = None
        self.fct_researcher: int | None = None
        self._first_send: int | None = None
        self._relayed = 0

        self.sensor_sender = self.sensor_stack.create_sender(
            experiment_id=self.experiment_id,
            mode="identify",
            dst_mac=n["dtn1"].mac,
            l2_port=next(iter(n["sensor"].ports)),
            flow="daq-mmt",
        )
        self.dtn1_sender = self.dtn1_stack.create_sender(
            experiment_id=self.experiment_id,
            mode="identify",
            dst_ip=n["dtn2"].ip,
            flow="daq-mmt",
        )
        self.dtn1_receiver = self.dtn1_stack.bind_receiver(
            SCENARIO_EXPERIMENT, on_message=self._relay_at_dtn1
        )
        self.storage_receiver = self.dtn2_stack.bind_receiver(
            SCENARIO_EXPERIMENT,
            on_message=self._at_storage,
            config=ReceiverConfig(initial_rtt_ns=4 * cfg.wan_delay_ns),
        )
        self.researcher_receiver = self.researcher_stack.bind_receiver(
            SCENARIO_EXPERIMENT, on_message=self._at_researcher
        )
        # Storage→campus distribution (when not duplicating in-network):
        # storage re-streams in a reliable mode with a local buffer.
        self.dtn2_stack.attach_buffer(512 * 1024 * 1024)
        self.campus_sender = self.dtn2_stack.create_sender(
            experiment_id=self.experiment_id,
            mode="age-recover",
            dst_ip=n["researcher"].ip,
            age_budget_ns=cfg.age_budget_ns,
            buffer_local=True,
            flow="campus-mmt",
        )

    # -- plumbing ----------------------------------------------------------------

    def _relay_at_dtn1(self, packet, _header) -> None:
        self._relayed += 1
        meta = {"sent_at": packet.meta.get("sent_at", self.sim.now)}
        self.dtn1_sender.send(packet.payload_size, payload=packet.payload, meta=meta)

    def _at_storage(self, packet, _header) -> None:
        sent_at = packet.meta.get("sent_at")
        if sent_at is not None:
            self.storage_latencies.append(self.sim.now - sent_at)
        self.fct_storage = self.sim.now
        if not self.cfg.duplicate_to_researcher:
            meta = {"sent_at": sent_at if sent_at is not None else self.sim.now}
            size = packet.payload_size
            payload = packet.payload
            if self.cfg.storage_forward_delay_ns:
                self.sim.schedule(
                    self.cfg.storage_forward_delay_ns,
                    self.campus_sender.send, size, payload, meta,
                )
            else:
                self.campus_sender.send(size, payload=payload, meta=meta)

    def _at_researcher(self, packet, _header) -> None:
        sent_at = packet.meta.get("sent_at")
        if sent_at is not None:
            self.researcher_latencies.append(self.sim.now - sent_at)
        self.fct_researcher = self.sim.now

    # -- driving -----------------------------------------------------------------------

    def _send_one(self) -> None:
        self.send_times.append(self.sim.now)
        if self._first_send is None:
            self._first_send = self.sim.now
        self.sensor_sender.send(self.cfg.message_bytes)

    def run(self, settle_ns: int = 10 * MILLISECOND) -> ScenarioResult:
        for i in range(self.cfg.message_count):
            self.sim.schedule(
                settle_ns + i * self.cfg.message_interval_ns, self._send_one
            )
        self.sim.run()
        # End-of-run reconciliation at storage (run metadata, as in the
        # pilot), then drain recovery traffic.
        self.storage_receiver.request_missing(self.experiment_id, self._relayed)
        self.sim.run()
        origin = self._first_send or 0
        return ScenarioResult(
            sent=len(self.send_times),
            storage_delivered=self.storage_receiver.stats.messages_delivered,
            researcher_delivered=self.researcher_receiver.stats.messages_delivered,
            storage_latencies_ns=self.storage_latencies,
            researcher_latencies_ns=self.researcher_latencies,
            fct_storage_ns=None if self.fct_storage is None else self.fct_storage - origin,
            fct_researcher_ns=(
                None if self.fct_researcher is None else self.fct_researcher - origin
            ),
            extras={
                "naks": self.storage_receiver.stats.naks_sent,
                "naks_served_nic1": self.nic1.stats.naks_served,
                "retransmissions": self.storage_receiver.stats.retransmissions_received,
                "unrecovered": self.storage_receiver.stats.unrecovered,
                "aged": self.storage_receiver.stats.aged_packets,
                "wan_lost": self.wan_link.stats.lost_random
                + self.wan_link.stats.lost_corruption,
                "duplicated": getattr(self, "duplication", None)
                and self.duplication.duplicated,
            },
        )
