"""An ESnet6-like continental backbone.

The paper's WAN stage (Fig. 1 B, §2.2) is ESnet in practice: a
capacity-planned 400 Gb/s backbone joining DOE facilities. This module
builds a realistic (simplified) instance: named PoPs with fiber-length
derived propagation delays (5 us/km in glass), 400 GbE trunks under a
:class:`~repro.wan.circuits.CircuitManager`, and helpers to attach
facility sites (FNAL, SURF, NERSC, ...) and reserve circuits along
lowest-latency paths.

Distances are route-level approximations of the production footprint —
good enough that coast-to-coast one-way delay lands in the real
30-40 ms band the paper's 10-100 ms RTT WAN figure implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.engine import Simulator
from ..netsim.host import Host
from ..netsim.switch import IpRouter
from ..netsim.topology import Topology
from ..netsim.units import gbps
from .circuits import CircuitManager

#: Propagation in fiber: ~5 us per km.
NS_PER_KM = 5_000

#: Backbone PoPs (a production-inspired subset).
POPS = (
    "SEAT", "SUNN", "SACR", "DENV", "ELPA", "KANS", "HOUS",
    "CHIC", "NASH", "ATLA", "WASH", "NEWY", "BOST",
)

#: Trunk fiber routes and their approximate lengths (km).
TRUNKS_KM: dict[tuple[str, str], int] = {
    ("SEAT", "SACR"): 1250,
    ("SACR", "SUNN"): 160,
    ("SUNN", "ELPA"): 1900,
    ("SACR", "DENV"): 1900,
    ("SEAT", "DENV"): 2100,
    ("DENV", "KANS"): 970,
    ("ELPA", "HOUS"): 1200,
    ("KANS", "CHIC"): 800,
    ("HOUS", "NASH"): 1250,
    ("CHIC", "NASH"): 750,
    ("CHIC", "WASH"): 1120,
    ("NASH", "ATLA"): 400,
    ("ATLA", "WASH"): 1000,
    ("WASH", "NEWY"): 370,
    ("NEWY", "BOST"): 350,
    ("CHIC", "NEWY"): 1300,
}

#: Facility sites and the PoP they home to (with tail length, km).
SITES: dict[str, tuple[str, int]] = {
    "FNAL": ("CHIC", 70),       # Fermilab
    "ANL": ("CHIC", 50),        # Argonne
    "SURF": ("DENV", 600),      # Sanford lab (DUNE far site)
    "NERSC": ("SACR", 140),     # LBNL/NERSC
    "SLAC": ("SUNN", 40),
    "BNL": ("NEWY", 100),       # Brookhaven
    "ORNL": ("NASH", 250),      # Oak Ridge
    "JLAB": ("WASH", 250),      # Jefferson Lab
}


@dataclass
class EsnetBackbone:
    """A built backbone: topology, routers, sites, circuit manager."""

    topology: Topology
    routers: dict[str, IpRouter]
    sites: dict[str, Host]
    circuits: CircuitManager
    link_names: dict[tuple[str, str], str] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        return self.topology.sim

    def attach_site(
        self,
        name: str,
        pop: str,
        tail_km: int,
        rate_bps: int = gbps(400),
        managed: bool = True,
    ) -> Host:
        """Attach an additional facility below a PoP."""
        if pop not in self.routers:
            raise KeyError(f"unknown PoP {pop!r}")
        if name in self.sites:
            raise KeyError(f"site {name!r} already attached")
        host = self.topology.add_host(name)
        link = self.topology.connect(
            host, self.routers[pop], rate_bps, tail_km * NS_PER_KM
        )
        if managed:
            self.circuits.manage(link)
        self.sites[name] = host
        self.link_names[(name, pop)] = link.name
        # Route installation is idempotent; refresh for the new site.
        self.topology.install_routes()
        return host

    def path_link_names(self, src: str, dst: str) -> list[str]:
        """Link names along the lowest-latency path between two nodes
        (sites or PoPs), for circuit reservation."""
        path = self.topology.path(self._node(src), self._node(dst))
        names = []
        for a, b in zip(path, path[1:]):
            names.append(self.topology.link_between(a, b).name)
        return names

    def one_way_delay_ns(self, src: str, dst: str) -> int:
        """Propagation delay along the lowest-latency path."""
        path = self.topology.path(self._node(src), self._node(dst))
        return sum(
            self.topology.link_between(a, b).propagation_delay_ns
            for a, b in zip(path, path[1:])
        )

    def reserve_circuit(
        self, src: str, dst: str, rate_bps: int, start_ns: int, end_ns: int, owner: str
    ):
        """Reserve bandwidth along the whole src→dst path, atomically."""
        return self.circuits.reserve(
            self.path_link_names(src, dst), rate_bps, start_ns, end_ns, owner
        )

    def _node(self, name: str):
        if name in self.sites:
            return self.sites[name]
        if name in self.routers:
            return self.routers[name]
        raise KeyError(f"unknown site or PoP {name!r}")


def build_esnet(
    sim: Simulator,
    trunk_rate_bps: int = gbps(400),
    with_sites: bool = True,
) -> EsnetBackbone:
    """Build the backbone (and, optionally, the standard facility set)."""
    topo = Topology(sim)
    routers = {pop: topo.add_router(pop) for pop in POPS}
    circuits = CircuitManager(headroom=0.05)
    backbone = EsnetBackbone(
        topology=topo, routers=routers, sites={}, circuits=circuits
    )
    for (a, b), km in TRUNKS_KM.items():
        link = topo.connect(routers[a], routers[b], trunk_rate_bps, km * NS_PER_KM)
        circuits.manage(link)
        backbone.link_names[(a, b)] = link.name
    if with_sites:
        for site, (pop, tail_km) in SITES.items():
            backbone.attach_site(site, pop, tail_km, rate_bps=gbps(400))
    topo.install_routes()
    return backbone
