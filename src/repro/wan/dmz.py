"""Science DMZ and perimeter models.

"DTNs are placed in the DMZ to avoid the overhead of traversing
perimeter appliances such as firewalls" (§2). To make that overhead
measurable, :class:`FirewallNode` models a stateful perimeter
appliance: per-packet inspection latency and a bounded inspection
rate, both of which crush elephant flows. :func:`build_campus`
assembles a campus edge with both paths — through the firewall to
inside hosts, and the DMZ bypass to the DTN — so benches can compare
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.engine import Simulator
from ..netsim.headers import EthernetHeader, Ipv4Header
from ..netsim.host import Host
from ..netsim.link import Port
from ..netsim.node import Node
from ..netsim.packet import Packet
from ..netsim.switch import RoutingTable
from ..netsim.topology import Topology
from ..netsim.units import MICROSECOND, SECOND, gbps


class FirewallNode(Node):
    """A stateful perimeter appliance: inspection latency + rate cap.

    Packets are inspected one at a time: each costs
    ``inspection_ns``, and no more than ``inspection_rate_pps`` can be
    inspected per second — the typical reasons DTNs bypass the
    perimeter.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        inspection_ns: int = 20 * MICROSECOND,
        inspection_rate_pps: int = 1_000_000,
    ) -> None:
        super().__init__(sim, name)
        self.mac = mac
        self.routes = RoutingTable()
        self.inspection_ns = inspection_ns
        self.min_gap_ns = SECOND // inspection_rate_pps
        self.inspected = 0
        self.dropped_no_route = 0
        self._next_free_ns = 0

    def add_route(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        if port_name not in self.ports:
            raise ValueError(f"{self.name} has no port {port_name!r}")
        self.routes.add(prefix, port_name, next_hop_mac)

    def receive(self, packet: Packet, port: Port) -> None:
        start = max(self.sim.now, self._next_free_ns)
        self._next_free_ns = start + self.min_gap_ns
        done = start + self.inspection_ns
        self.sim.schedule_at(done, self._forward, packet)

    def _forward(self, packet: Packet) -> None:
        self.inspected += 1
        ip = packet.find(Ipv4Header)
        if ip is None:
            self.dropped_no_route += 1
            return
        route = self.routes.lookup(ip.dst)
        if route is None:
            self.dropped_no_route += 1
            return
        eth = packet.find(EthernetHeader)
        if eth is not None:
            eth.src = self.mac
            eth.dst = route.next_hop_mac
        self.ports[route.port_name].send(packet)


@dataclass
class Campus:
    """A campus edge: border router, DMZ DTN, firewalled inside host."""

    border: Node
    dtn: Host
    firewall: FirewallNode
    inside: Host


def build_campus(
    topology: Topology,
    name: str,
    uplink_of: Node,
    uplink_rate_bps: int = gbps(100),
    uplink_delay_ns: int = 5 * 1_000_000,
    inside_rate_bps: int = gbps(10),
) -> Campus:
    """Attach a campus (Fig. 1 stage D) below ``uplink_of``.

    The DTN hangs directly off the border router (Science DMZ); the
    inside host sits behind a :class:`FirewallNode`.
    """
    border = topology.add_router(f"{name}-border")
    dtn = topology.add_host(f"{name}-dtn")
    firewall = FirewallNode(
        topology.sim, f"{name}-firewall", mac=topology.allocate_mac()
    )
    topology.add(firewall)
    inside = topology.add_host(f"{name}-inside")

    short = 2 * MICROSECOND
    topology.connect(uplink_of, border, uplink_rate_bps, uplink_delay_ns)
    topology.connect(border, dtn, uplink_rate_bps, short)
    topology.connect(border, firewall, inside_rate_bps, short)
    topology.connect(firewall, inside, inside_rate_bps, short)
    return Campus(border=border, dtn=dtn, firewall=firewall, inside=inside)
