"""Capacity-planned circuits.

Scientific WANs run DAQ transfers over *reserved* circuits — "data
transfers across scientific networks are usually capacity-planned and
scheduled to ensure that suitable transmission capacity is available"
(§5.3); this is the basis for the paper's hypothesis that MMT needs no
congestion control. A :class:`CircuitManager` does that bookkeeping:
reservations against link capacity with admission control, so
scenarios can assert they are (or deliberately are not) inside plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.link import Link


class CircuitError(RuntimeError):
    """Raised when a reservation cannot be admitted."""


@dataclass(frozen=True)
class Reservation:
    """A bandwidth reservation on one link for a time window."""

    circuit_id: int
    link_name: str
    rate_bps: int
    start_ns: int
    end_ns: int
    owner: str

    def overlaps(self, start_ns: int, end_ns: int) -> bool:
        return self.start_ns < end_ns and start_ns < self.end_ns


@dataclass
class CircuitManager:
    """Admission control for reservations across a set of links.

    ``headroom`` keeps a fraction of each link unreserved for control
    traffic and measurement flows, as production circuit services do.
    """

    headroom: float = 0.05
    _links: dict[str, Link] = field(default_factory=dict)
    _reservations: list[Reservation] = field(default_factory=list)
    _next_id: int = 1

    def manage(self, link: Link) -> None:
        """Put ``link`` under this manager's admission control."""
        if link.name in self._links:
            raise CircuitError(f"link {link.name!r} already managed")
        self._links[link.name] = link

    def reservable_bps(self, link_name: str, start_ns: int, end_ns: int) -> int:
        """Capacity still admittable on a link during a window."""
        link = self._require(link_name)
        ceiling = int(link.rate_bps * (1.0 - self.headroom))
        committed = sum(
            r.rate_bps
            for r in self._reservations
            if r.link_name == link_name and r.overlaps(start_ns, end_ns)
        )
        return max(0, ceiling - committed)

    def reserve(
        self,
        link_names: list[str],
        rate_bps: int,
        start_ns: int,
        end_ns: int,
        owner: str,
    ) -> list[Reservation]:
        """Reserve ``rate_bps`` along a path of links, atomically."""
        if rate_bps <= 0:
            raise CircuitError("reservation rate must be positive")
        if end_ns <= start_ns:
            raise CircuitError("reservation window must be non-empty")
        for name in link_names:
            available = self.reservable_bps(name, start_ns, end_ns)
            if rate_bps > available:
                raise CircuitError(
                    f"link {name!r}: requested {rate_bps} b/s, only "
                    f"{available} b/s admittable in window"
                )
        granted = []
        for name in link_names:
            reservation = Reservation(
                circuit_id=self._next_id,
                link_name=name,
                rate_bps=rate_bps,
                start_ns=start_ns,
                end_ns=end_ns,
                owner=owner,
            )
            self._reservations.append(reservation)
            granted.append(reservation)
        self._next_id += 1
        return granted

    def release(self, circuit_id: int) -> int:
        """Drop all legs of a reservation; returns how many were removed."""
        before = len(self._reservations)
        self._reservations = [
            r for r in self._reservations if r.circuit_id != circuit_id
        ]
        return before - len(self._reservations)

    def utilization(self, link_name: str, at_ns: int) -> float:
        """Reserved fraction of a link's rate at an instant."""
        link = self._require(link_name)
        committed = sum(
            r.rate_bps
            for r in self._reservations
            if r.link_name == link_name and r.start_ns <= at_ns < r.end_ns
        )
        return committed / link.rate_bps

    def _require(self, link_name: str) -> Link:
        link = self._links.get(link_name)
        if link is None:
            raise CircuitError(f"link {link_name!r} is not managed")
        return link
