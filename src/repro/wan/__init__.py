"""WAN substrate: circuits, Science DMZ, and end-to-end scenarios."""

from .circuits import CircuitError, CircuitManager, Reservation
from .dmz import Campus, FirewallNode, build_campus
from .esnet import EsnetBackbone, POPS, SITES, TRUNKS_KM, build_esnet
from .scenarios import (
    MultimodalScenario,
    SCENARIO_EXPERIMENT,
    ScenarioConfig,
    ScenarioResult,
    TodayScenario,
)

__all__ = [
    "Campus",
    "CircuitError",
    "CircuitManager",
    "EsnetBackbone",
    "FirewallNode",
    "MultimodalScenario",
    "Reservation",
    "SCENARIO_EXPERIMENT",
    "ScenarioConfig",
    "ScenarioResult",
    "TodayScenario",
    "POPS",
    "SITES",
    "TRUNKS_KM",
    "build_campus",
    "build_esnet",
]
