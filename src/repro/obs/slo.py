"""Declarative SLO rules evaluated on samples at engine time.

A rule is ``metric{label=value,...} agg op threshold`` — e.g.::

    queue_bytes{node=u280} p99 <= 262144
    soak_retx_occupancy_pct max <= 100
    soak_unrecovered last == 0

Aggregates run over a series' ring contents; labels are a subset
match (a rule with no labels watches every series of that metric).

The :class:`Watchdog` registers as a sampler observer and re-evaluates
the matching rules after every recorded point, so the **first**
violation is caught at the engine time it happens — and, when a tracer
is attached, pins the flight recorder right then: the violating
metric's series name becomes the anomalous element, so the timeline
that led up to the breach survives ring eviction (PR 5 semantics).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from .sampler import SampleSeries, Sampler

__all__ = ["HealthEvent", "HealthReport", "SloRule", "Watchdog"]

_AGGS = ("last", "max", "min", "mean", "p50", "p99")
_OPS = ("<=", ">=", "==", "<", ">")

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z_][\w.]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<agg>last|max|min|mean|p50|p99)"
    r"\s*(?P<op>==|<=|>=|<|>)"
    r"\s*(?P<threshold>-?\d+(?:\.\d+)?)\s*$"
)


def _percentile(values: list[int], fraction: float) -> float:
    """Nearest-rank percentile (same convention as repro.analysis)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class SloRule:
    """One declarative objective over a sampled metric."""

    metric: str
    agg: str = "max"
    op: str = "<="
    threshold: float = 0
    labels: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.agg not in _AGGS:
            raise ValueError(f"unknown aggregate {self.agg!r} (want {_AGGS})")
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r} (want {_OPS})")

    @classmethod
    def parse(cls, text: str) -> "SloRule":
        """Parse ``metric{k=v} agg op threshold``."""
        match = _RULE_RE.match(text)
        if match is None:
            raise ValueError(
                f"unparseable SLO rule {text!r} "
                "(want 'metric{label=value} agg op threshold')"
            )
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ValueError(f"bad label {pair!r} in rule {text!r}")
                labels.append((key.strip(), value.strip()))
        threshold_text = match.group("threshold")
        threshold = (
            float(threshold_text) if "." in threshold_text
            else int(threshold_text)
        )
        return cls(
            metric=match.group("metric"),
            agg=match.group("agg"),
            op=match.group("op"),
            threshold=threshold,
            labels=tuple(sorted(labels)),
        )

    def matches(self, series: SampleSeries) -> bool:
        if series.metric != self.metric:
            return False
        return all(series.labels.get(k) == v for k, v in self.labels)

    def aggregate(self, values: list[int]) -> int | float:
        if not values:
            raise ValueError("aggregate over empty series")
        if self.agg == "last":
            return values[-1]
        if self.agg == "max":
            return max(values)
        if self.agg == "min":
            return min(values)
        if self.agg == "mean":
            return sum(values) / len(values)
        return _percentile(values, 0.5 if self.agg == "p50" else 0.99)

    def holds(self, observed: int | float) -> bool:
        if self.op == "<=":
            return observed <= self.threshold
        if self.op == ">=":
            return observed >= self.threshold
        if self.op == "<":
            return observed < self.threshold
        if self.op == ">":
            return observed > self.threshold
        return observed == self.threshold

    def __str__(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        selector = f"{self.metric}{{{inner}}}" if inner else self.metric
        return f"{selector} {self.agg} {self.op} {self.threshold}"


@dataclass
class HealthEvent:
    """One rule/series pair in violation."""

    rule: str
    metric: str
    labels: dict[str, str]
    agg: str
    op: str
    threshold: float
    observed: int | float
    at_ns: int  # engine time of the first violating evaluation

    @property
    def series_name(self) -> str:
        if not self.labels:
            return self.metric
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{self.metric}{{{inner}}}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "labels": dict(self.labels),
            "agg": self.agg,
            "op": self.op,
            "threshold": self.threshold,
            "observed": self.observed,
            "at_ns": self.at_ns,
        }


@dataclass
class HealthReport:
    """Roll-up of an entire run's SLO evaluations."""

    rules: int
    evaluations: int
    events: list[HealthEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.events

    @property
    def violations(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "rules": self.rules,
            "evaluations": self.evaluations,
            "violations": self.violations,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        events = [
            HealthEvent(
                rule=row["rule"],
                metric=row["metric"],
                labels=dict(row["labels"]),
                agg=row["agg"],
                op=row["op"],
                threshold=row["threshold"],
                observed=row["observed"],
                at_ns=row["at_ns"],
            )
            for row in data.get("events", [])
        ]
        return cls(
            rules=data["rules"],
            evaluations=data["evaluations"],
            events=events,
        )


#: Label keys whose value names a topology component worth pinning
#: alongside the synthetic ``slo:`` element — the flight recorder then
#: keeps the offending component's own spans too, not just the breach.
_COMPONENT_LABELS = ("element", "node", "link", "host", "backend")


class Watchdog:
    """Evaluates SLO rules incrementally as samples land.

    Violation identity is ``(rule, series)``: the first breach emits a
    ``slo.violation`` span and pins the flight recorder; later breaches
    of the same pair only refresh ``observed`` (so the report carries
    the run-final aggregate, not the first excursion).
    """

    def __init__(
        self,
        rules,
        sampler: Sampler | None = None,
        tracer=None,
    ) -> None:
        self.rules: tuple[SloRule, ...] = tuple(
            SloRule.parse(r) if isinstance(r, str) else r for r in rules
        )
        self.sampler = sampler
        self.tracer = tracer
        self.evaluations = 0
        self._events: dict[tuple, HealthEvent] = {}
        if sampler is not None:
            sampler.observers.append(self.on_sample)

    # -- evaluation -------------------------------------------------------

    def on_sample(self, series: SampleSeries) -> None:
        """Sampler observer hook: re-check rules matching this series."""
        for index, rule in enumerate(self.rules):
            if rule.matches(series):
                self._evaluate(index, rule, series)

    def check(self) -> None:
        """Evaluate every rule against every matching series now."""
        if self.sampler is None:
            return
        for series in self.sampler.all_series():
            self.on_sample(series)

    def _evaluate(self, index: int, rule: SloRule, series: SampleSeries) -> None:
        values = series.values()
        if not values:
            return
        self.evaluations += 1
        observed = rule.aggregate(values)
        if rule.holds(observed):
            return
        key = (index, series.key)
        event = self._events.get(key)
        if event is not None:
            event.observed = observed
            return
        at_ns = series.points[-1][0]
        event = HealthEvent(
            rule=str(rule),
            metric=series.metric,
            labels=dict(series.labels),
            agg=rule.agg,
            op=rule.op,
            threshold=rule.threshold,
            observed=observed,
            at_ns=at_ns,
        )
        self._events[key] = event
        self._pin(rule, series, observed)

    def _pin(self, rule: SloRule, series: SampleSeries, observed) -> None:
        if self.tracer is None:
            return
        element = f"slo:{series.name}"
        # Pin before emitting: the breach span then routes straight to
        # the pinned list instead of displacing a ring slot, and the
        # offending component's retained history is rescued intact.
        self.tracer.pin_element(element)
        for key in _COMPONENT_LABELS:
            value = series.labels.get(key)
            if value:
                self.tracer.pin_element(value)
        self.tracer.emit(
            "slo.violation",
            element,
            metric=series.metric,
            rule=str(rule),
            observed=observed,
            threshold=rule.threshold,
        )

    # -- results ----------------------------------------------------------

    @property
    def violations(self) -> int:
        return len(self._events)

    def events(self) -> list[HealthEvent]:
        """Violations ordered by (rule declaration, series labels)."""
        return [self._events[key] for key in sorted(self._events)]

    def report(self) -> HealthReport:
        return HealthReport(
            rules=len(self.rules),
            evaluations=self.evaluations,
            events=self.events(),
        )
