"""repro.obs — on-clock sampling, SLO watchdogs, and run reports.

Three layers (see DESIGN §14):

* :class:`Sampler` — self-scheduling engine citizen snapshotting
  gauges into integer ring-buffered time series keyed
  ``(metric, labels)``; exported as schema-versioned JSONL and as
  Perfetto counter tracks merged into the Chrome trace.
* :class:`Watchdog` + :class:`SloRule` — declarative objectives
  evaluated on samples at engine time; violations pin the tracer
  flight recorder and roll into a :class:`HealthReport`.
* :func:`diff_bench` — ratio-based regression/improvement diff of a
  fresh bench result against the committed ``BENCH_*.json`` baseline
  (``repro report``).
"""

from .export import (
    OBS_SCHEMA_VERSION,
    counter_tracks,
    load_series,
    series_digest,
    series_records,
    write_series,
)
from .report import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    BenchDiff,
    DiffRow,
    ReportError,
    diff_bench,
    diff_bench_files,
    render_diff,
)
from .sampler import SampleSeries, Sampler, watch_farm, watch_pilot, watch_queue
from .slo import HealthEvent, HealthReport, SloRule, Watchdog

__all__ = [
    "OBS_SCHEMA_VERSION",
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "BenchDiff",
    "DiffRow",
    "HealthEvent",
    "HealthReport",
    "ReportError",
    "SampleSeries",
    "Sampler",
    "SloRule",
    "Watchdog",
    "counter_tracks",
    "diff_bench",
    "diff_bench_files",
    "load_series",
    "render_diff",
    "series_digest",
    "series_records",
    "watch_farm",
    "watch_pilot",
    "watch_queue",
    "write_series",
]
