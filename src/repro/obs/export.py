"""Schema-versioned JSONL export for sampled time series.

Format mirrors ``repro.trace.export``: first line is a ``meta`` record
carrying the schema version and sampler counters, every further line
is one ``series`` record::

    {"kind": "meta", "schema_version": 1, "every_ns": ..., ...}
    {"kind": "series", "metric": ..., "labels": {...}, "points": [[t, v], ...]}

Series are written in ``(metric, labels)`` order and every record is
``sort_keys`` JSON, so same-seed runs produce byte-identical files —
:func:`series_digest` pins that in tests across ``--jobs`` counts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .sampler import Sampler

__all__ = [
    "OBS_SCHEMA_VERSION",
    "counter_tracks",
    "load_series",
    "series_digest",
    "series_records",
    "write_series",
]

OBS_SCHEMA_VERSION = 1


def series_records(sampler: Sampler) -> list[dict]:
    """Every series as a JSON-ready record, deterministic order."""
    return [
        {
            "metric": series.metric,
            "labels": dict(series.labels),
            "points": [[t, v] for t, v in series.points],
        }
        for series in sampler.all_series()
    ]


def _record_lines(records: list[dict]) -> list[str]:
    return [
        json.dumps({"kind": "series", **record}, sort_keys=True)
        for record in records
    ]


def write_series(sampler: Sampler, path: str | Path, meta: dict | None = None) -> int:
    """Write the sample series as JSONL; returns the series count."""
    records = series_records(sampler)
    header = {
        "kind": "meta",
        "schema_version": OBS_SCHEMA_VERSION,
        "every_ns": sampler.every_ns,
        "ticks": sampler.ticks,
        "sample_emits": sampler.sample_emits,
        "evictions": sampler.evictions,
        "series": len(records),
    }
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(_record_lines(records))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(records)


def load_series(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a series JSONL file back; returns ``(meta, records)``."""
    meta: dict = {}
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            if kind == "meta":
                if record.get("schema_version") != OBS_SCHEMA_VERSION:
                    raise ValueError(
                        "unsupported series schema "
                        f"{record.get('schema_version')!r}"
                    )
                meta = record
            elif kind == "series":
                records.append(record)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
    return meta, records


def series_digest(source) -> str:
    """SHA-256 over the canonical series records.

    ``source`` may be a :class:`Sampler` or a pre-built record list
    (e.g. the output of ``merge_series`` across shards).
    """
    records = series_records(source) if isinstance(source, Sampler) else source
    payload = "\n".join(_record_lines(records))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def counter_tracks(source) -> list[tuple[str, list[tuple[int, int]]]]:
    """Perfetto counter tracks: ``(track_name, [(t_ns, value), ...])``.

    Accepts a :class:`Sampler` or a record list; feed the result to
    :func:`repro.trace.export.write_chrome_trace` (``counters=``) to
    merge queue-depth curves into the span timeline.
    """
    records = series_records(source) if isinstance(source, Sampler) else source
    tracks = []
    for record in records:
        labels = record["labels"]
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{record['metric']}{{{inner}}}"
        else:
            name = record["metric"]
        tracks.append((name, [(t, v) for t, v in record["points"]]))
    return tracks
