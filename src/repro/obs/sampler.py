"""On-clock time-series sampling.

The :class:`Sampler` is an engine citizen in the same idiom as
:class:`repro.faults.dynamics.LinkDynamics`: it keeps **exactly one
pending event** on the simulator heap while armed, runs on the engine
clock (so every sample timestamp is deterministic per seed), and costs
nothing when absent — components never know a sampler exists; all
probes are pull-based closures registered from the outside.

Series are integer ring buffers keyed ``(metric, labels)``. Ring
capacity bounds memory on long soaks the same way the tracer ring
bounds span memory; evictions are counted, never silent.

The sampler is also usable **unarmed**: :meth:`Sampler.sample_now`
takes one snapshot of every probe at the current engine time without
scheduling anything. The soak harness drives its epoch sampling this
way so the engine's event sequence — and therefore every seeded
artifact — is byte-identical to the pre-sampler code.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

__all__ = [
    "SampleSeries",
    "Sampler",
    "watch_farm",
    "watch_pilot",
    "watch_queue",
]


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class SampleSeries:
    """One ring-buffered time series: ``(t_ns, value)`` integer pairs."""

    def __init__(
        self, metric: str, labels: dict[str, str], capacity: int
    ) -> None:
        self.metric = metric
        self.labels = {str(k): str(v) for k, v in sorted(labels.items())}
        self.capacity = capacity
        self.points: deque[tuple[int, int]] = deque(maxlen=capacity)
        self.emitted = 0
        self.evicted = 0

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (self.metric, _label_key(self.labels))

    @property
    def name(self) -> str:
        """Human label, e.g. ``queue_bytes{node=u280,port=out}``."""
        if not self.labels:
            return self.metric
        inner = ",".join(f"{k}={v}" for k, v in self.labels.items())
        return f"{self.metric}{{{inner}}}"

    def append(self, t_ns: int, value: int) -> None:
        if len(self.points) == self.capacity:
            self.evicted += 1
        self.points.append((int(t_ns), int(value)))
        self.emitted += 1

    def values(self) -> list[int]:
        return [value for _, value in self.points]

    @property
    def last(self) -> int | None:
        return self.points[-1][1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"SampleSeries({self.name}, points={len(self.points)})"


class Sampler:
    """Periodic gauge snapshotter driven by the engine clock.

    Probes are zero-argument callables returning an int-castable value;
    they are read in registration order on every tick, so the sample
    stream is a pure function of (seed, probe set, schedule) and the
    JSONL export is byte-identical across runs and shard counts.

    Observers (``on_sample(series)``) fire after every recorded point —
    the SLO watchdog hooks in here to evaluate rules at engine time.
    """

    def __init__(
        self,
        sim,
        every_ns: int,
        start_ns: int = 0,
        end_ns: int | None = None,
        capacity: int = 4096,
    ) -> None:
        if every_ns <= 0:
            raise ValueError(f"every_ns must be positive, got {every_ns}")
        if end_ns is not None and end_ns < start_ns:
            raise ValueError(f"end_ns {end_ns} precedes start_ns {start_ns}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.every_ns = every_ns
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.capacity = capacity
        self._probes: list[tuple[str, Callable[[], int], dict[str, str]]] = []
        self._series: dict[tuple, SampleSeries] = {}
        self.observers: list[Callable[[SampleSeries], None]] = []
        self.ticks = 0
        self.sample_emits = 0
        self._armed = False
        self._event = None

    # -- probe registration & recording ----------------------------------

    def watch(
        self, metric: str, probe: Callable[[], int], **labels: str
    ) -> SampleSeries:
        """Register a pull-based gauge probe, read on every tick.

        The series is created eagerly so export order is fixed at
        registration time even if the run ends before the first tick.
        """
        series = self._get_series(metric, labels)
        self._probes.append((metric, probe, dict(labels)))
        return series

    def record(self, metric: str, value: int, **labels: str) -> SampleSeries:
        """Record one point at the current engine time (manual gauge)."""
        series = self._get_series(metric, labels)
        series.append(self.sim.now, int(value))
        self.sample_emits += 1
        for observer in self.observers:
            observer(series)
        return series

    def sample_now(self) -> None:
        """Read every probe once at the current engine time."""
        self.ticks += 1
        for metric, probe, labels in self._probes:
            self.record(metric, probe(), **labels)

    def _get_series(self, metric: str, labels: dict) -> SampleSeries:
        key = (metric, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = SampleSeries(metric, labels, self.capacity)
            self._series[key] = series
        return series

    # -- series access ----------------------------------------------------

    def series(self, metric: str, **labels: str) -> SampleSeries | None:
        return self._series.get((metric, _label_key(labels)))

    def all_series(self) -> list[SampleSeries]:
        """Every series in deterministic ``(metric, labels)`` order."""
        return [self._series[key] for key in sorted(self._series)]

    @property
    def evictions(self) -> int:
        return sum(s.evicted for s in self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    # -- self-scheduling (LinkDynamics idiom) -----------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        """Schedule the first tick; exactly one event pends thereafter."""
        if self._armed:
            raise RuntimeError("sampler already armed")
        if self.start_ns < self.sim.now:
            raise RuntimeError(
                f"sampler start {self.start_ns} is in the past "
                f"(now={self.sim.now})"
            )
        self._armed = True
        self._event = self.sim.schedule(
            self.start_ns - self.sim.now, self._fire
        )

    def disarm(self) -> None:
        """Cancel the pending tick, if any."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._armed = False

    def _fire(self) -> None:
        self._event = None
        self.sample_now()
        next_ns = self.sim.now + self.every_ns
        if self.end_ns is not None and next_ns > self.end_ns:
            self._armed = False
            return
        # Our own event is already off the heap, so an empty heap means
        # the workload has quiesced — stop rather than tick an idle
        # simulation forever (run() without a horizon must terminate).
        if self.sim.pending_events() == 0:
            self._armed = False
            return
        self._event = self.sim.schedule(self.every_ns, self._fire)


# -- probe builders -----------------------------------------------------------


def watch_queue(sampler: Sampler, queue, **labels: str) -> None:
    """Watch one queue's depth (plus AQM counters when present)."""
    sampler.watch("queue_bytes", lambda: queue.bytes_queued, **labels)
    sampler.watch("queue_dropped_total", lambda: queue.dropped, **labels)
    if hasattr(queue, "ce_marked"):
        sampler.watch("queue_ce_marked_total", lambda: queue.ce_marked, **labels)


def watch_pilot(sampler: Sampler, pilot) -> None:
    """Wire the standard pilot gauge set: queues, links, retx, engine."""
    for node_name in sorted(pilot.topology.nodes):
        node = pilot.topology.nodes[node_name]
        for port_name in sorted(node.ports):
            queue = node.ports[port_name].queue
            sampler.watch(
                "queue_bytes",
                (lambda q=queue: q.bytes_queued),
                node=node_name,
                port=port_name,
            )
    for link in pilot.topology.links:
        sampler.watch(
            "link_current_rate_bps",
            (lambda s=link.stats: s.current_rate_bps),
            link=link.name,
        )
    for host, buffer in (
        ("u280", getattr(pilot, "buffer", None)),
        ("dtn1", getattr(pilot, "dtn1_buffer", None)),
    ):
        if buffer is not None:
            sampler.watch(
                "retx_buffer_bytes",
                (lambda b=buffer: b.bytes_used),
                host=host,
            )
            sampler.watch(
                "retx_buffer_entries", (lambda b=buffer: len(b)), host=host
            )
    sampler.watch("sim_pending_events", pilot.sim.pending_events)
    if getattr(pilot, "tracer", None) is not None:
        sampler.watch(
            "trace_events_retained", lambda: pilot.tracer.events_retained
        )


def watch_farm(sampler: Sampler, farm) -> None:
    """Wire receiver-farm gauges: per-backend fill, skew, engine depth."""
    for address in sorted(farm.balancer.backends):
        sampler.watch(
            "fleet_node_fill_pct",
            (lambda a=address: int(farm.balancer.backends[a].fill_pct)),
            backend=address,
        )

    def fill_skew() -> int:
        fills = [
            int(state.fill_pct)
            for state in farm.balancer.backends.values()
            if not state.dead
        ]
        return (max(fills) - min(fills)) if fills else 0

    sampler.watch("fleet_fill_skew", fill_skew)
    sampler.watch("sim_pending_events", farm.sim.pending_events)
    if getattr(farm, "tracer", None) is not None:
        sampler.watch(
            "trace_events_retained", lambda: farm.tracer.events_retained
        )
