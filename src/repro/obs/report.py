"""Run reports: bench regression diffs and health rendering.

``diff_bench`` compares a freshly produced ``BENCH_*.json`` against the
committed baseline. Metrics split into two classes:

* **timing** — names ending ``_per_second`` (higher is better) or the
  ``wall_time_s`` bookkeeping field (lower is better). These vary with
  the machine, so they compare by ratio against a tolerance band.
* **deterministic** — everything else (operation counts, digests,
  byte totals). Seeded runs must reproduce these exactly; any
  difference is ``drift``, which is just as fatal as a regression
  because it means the workload itself changed.

Provenance is checked before any numbers are compared: both files must
carry a non-null seed, the seeds must match, and rows that embed their
own seed / grid coordinates must agree on them — diffing two runs of
different workloads produces a confident-looking table of nonsense.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..telemetry.benchfmt import BenchResult, load_bench_result

__all__ = [
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "BenchDiff",
    "DiffRow",
    "ReportError",
    "diff_bench",
    "diff_bench_files",
    "render_diff",
]

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_REGRESSION = 3

#: Row keys that locate a case on its grid; when present in both rows
#: they must agree or the comparison is meaningless.
GRID_KEYS = (
    "seed",
    "transport",
    "senders",
    "load",
    "mark_threshold",
    "symmetric",
    "flows",
    "nodes",
    "messages",
)


class ReportError(Exception):
    """A diff input is unusable (bad provenance, missing file, ...)."""


@dataclass(frozen=True)
class DiffRow:
    bench: str
    case: str
    metric: str
    baseline: object
    fresh: object
    ratio: float | None
    status: str  # ok | improvement | regression | drift | added | removed


@dataclass
class BenchDiff:
    name: str
    rows: list[DiffRow]

    @property
    def regressions(self) -> list[DiffRow]:
        return [r for r in self.rows if r.status in ("regression", "drift")]

    @property
    def improvements(self) -> list[DiffRow]:
        return [r for r in self.rows if r.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_status(self) -> int:
        return EXIT_OK if self.ok else EXIT_REGRESSION

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "rows": [
                {
                    "case": r.case,
                    "metric": r.metric,
                    "baseline": r.baseline,
                    "fresh": r.fresh,
                    "ratio": r.ratio,
                    "status": r.status,
                }
                for r in self.rows
            ],
        }


def _is_timing(metric: str) -> bool:
    return metric.endswith("_per_second") or metric == "wall_time_s"


def _higher_is_better(metric: str) -> bool:
    return metric.endswith("_per_second")


def _check_provenance(fresh: BenchResult, baseline: BenchResult) -> None:
    if fresh.name != baseline.name:
        raise ReportError(
            f"bench name mismatch: fresh={fresh.name!r} "
            f"baseline={baseline.name!r}"
        )
    for which, result in (("fresh", fresh), ("baseline", baseline)):
        if not isinstance(result.seed, int):
            raise ReportError(
                f"{which} {result.name} carries no seed "
                f"(got {result.seed!r}) — unreproducible, refusing to diff"
            )
    if fresh.seed != baseline.seed:
        raise ReportError(
            f"seed mismatch in {fresh.name}: fresh={fresh.seed} "
            f"baseline={baseline.seed}"
        )
    shared = set(fresh.metrics) & set(baseline.metrics)
    for case in sorted(shared):
        fresh_row = fresh.metrics[case]
        base_row = baseline.metrics[case]
        if "seed" in fresh_row or "seed" in base_row:
            for which, row in (("fresh", fresh_row), ("baseline", base_row)):
                if row.get("seed") is None:
                    raise ReportError(
                        f"{which} row {fresh.name}/{case} has a null seed"
                    )
        for key in GRID_KEYS:
            if key in fresh_row and key in base_row:
                if fresh_row[key] != base_row[key]:
                    raise ReportError(
                        f"grid coordinate mismatch in {fresh.name}/{case}: "
                        f"{key} fresh={fresh_row[key]!r} "
                        f"baseline={base_row[key]!r}"
                    )


def _diff_metric(
    bench: str, case: str, metric: str, base, new, tolerance: float
) -> DiffRow:
    numeric = isinstance(base, (int, float)) and isinstance(new, (int, float))
    if numeric and _is_timing(metric):
        ratio = (new / base) if base else None
        if ratio is None:
            status = "ok" if new == base else "drift"
        else:
            worse = (1 / ratio) if _higher_is_better(metric) else ratio
            if worse > 1 + tolerance:
                status = "regression"
            elif worse < 1 - tolerance:
                status = "improvement"
            else:
                status = "ok"
        return DiffRow(bench, case, metric, base, new, ratio, status)
    # Deterministic field: exact reproduction or drift.
    status = "ok" if base == new else "drift"
    ratio = (new / base) if numeric and base else None
    return DiffRow(bench, case, metric, base, new, ratio, status)


def diff_bench(
    fresh: BenchResult, baseline: BenchResult, tolerance: float = 0.2
) -> BenchDiff:
    """Compare a fresh bench result against its committed baseline."""
    if tolerance < 0:
        raise ReportError(f"tolerance must be >= 0, got {tolerance}")
    _check_provenance(fresh, baseline)
    rows: list[DiffRow] = []
    if fresh.wall_time_s is not None and baseline.wall_time_s is not None:
        rows.append(
            _diff_metric(
                fresh.name, "(run)", "wall_time_s",
                baseline.wall_time_s, fresh.wall_time_s, tolerance,
            )
        )
    cases = sorted(set(fresh.metrics) | set(baseline.metrics))
    for case in cases:
        fresh_row = fresh.metrics.get(case)
        base_row = baseline.metrics.get(case)
        if fresh_row is None:
            rows.append(
                DiffRow(fresh.name, case, "", base_row, None, None, "removed")
            )
            continue
        if base_row is None:
            rows.append(
                DiffRow(fresh.name, case, "", None, fresh_row, None, "added")
            )
            continue
        for metric in sorted(set(fresh_row) | set(base_row)):
            if metric in GRID_KEYS:
                continue  # provenance already cross-checked these
            if metric not in fresh_row:
                rows.append(
                    DiffRow(
                        fresh.name, case, metric,
                        base_row[metric], None, None, "removed",
                    )
                )
                continue
            if metric not in base_row:
                rows.append(
                    DiffRow(
                        fresh.name, case, metric,
                        None, fresh_row[metric], None, "added",
                    )
                )
                continue
            rows.append(
                _diff_metric(
                    fresh.name, case, metric,
                    base_row[metric], fresh_row[metric], tolerance,
                )
            )
    return BenchDiff(name=fresh.name, rows=rows)


def diff_bench_files(
    fresh_path: str | Path,
    baseline_path: str | Path,
    tolerance: float = 0.2,
) -> BenchDiff:
    """File-path convenience wrapper around :func:`diff_bench`."""
    for which, path in (("fresh", fresh_path), ("baseline", baseline_path)):
        if not Path(path).is_file():
            raise ReportError(f"{which} bench file not found: {path}")
    return diff_bench(
        load_bench_result(fresh_path),
        load_bench_result(baseline_path),
        tolerance=tolerance,
    )


def render_diff(diff: BenchDiff, show_ok: bool = False) -> str:
    """Human table: one line per non-ok row (all rows with show_ok)."""
    lines = [f"bench {diff.name}:"]
    shown = 0
    for row in diff.rows:
        if row.status == "ok" and not show_ok:
            continue
        shown += 1
        ratio = f"{row.ratio:.3f}x" if row.ratio is not None else "-"
        lines.append(
            f"  [{row.status:>11}] {row.case}/{row.metric or '*'}: "
            f"baseline={row.baseline!r} fresh={row.fresh!r} ({ratio})"
        )
    ok_rows = sum(1 for r in diff.rows if r.status == "ok")
    lines.append(
        f"  {ok_rows} ok, {len(diff.improvements)} improved, "
        f"{len(diff.regressions)} regressed/drifted"
        + ("" if shown or show_ok else " (all rows within tolerance)")
    )
    return "\n".join(lines)
